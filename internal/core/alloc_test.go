package core_test

import (
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/race"
	"multiedge/internal/sim"
)

// This file gates the zero-allocation hot-path contract (DESIGN.md §13):
// after warmup, a steady-state operation allocates at most the one
// user-held Handle (which embeds its txOp). Everything else — frames,
// events, timers, receive records, scheduler queues, completion
// staging — must recycle.
//
// The measurements run testing.AllocsPerRun from inside a simulated
// process. While that process is parked in Wait/WaitCQ, the scheduler
// cooperatively runs every other simulated actor (protocol threads,
// NICs, the remote endpoint), so the counted window spans the WHOLE
// pipeline: submit, wire, receive dispatch, acknowledgement, and
// completion delivery — not just the caller's side.

// gateAllocs asserts a steady-state allocation budget. Under the race
// detector the instrumentation itself allocates, so the loops still run
// (exercising the recycling paths for the detector) but the count
// assertion is skipped.
func gateAllocs(t *testing.T, name string, got, limit float64) {
	t.Helper()
	t.Logf("%s: %.2f allocs/op (budget %.0f)", name, got, limit)
	if race.Enabled {
		t.Logf("race detector enabled; skipping allocation count assertion")
		return
	}
	if got > limit {
		t.Errorf("%s: %.2f allocs/op, budget %.0f", name, got, limit)
	}
}

// allocPair builds a loss-free two-node cluster with src/dst windows
// ready for steady-state op loops.
func allocPair(t *testing.T, cfg cluster.Config) (cl *cluster.Cluster, c01 *core.Conn, src, dst uint64) {
	t.Helper()
	cl, c01, _ = pairCluster(t, cfg)
	const window = 64 * 1024
	src = cl.Nodes[0].EP.Alloc(window)
	dst = cl.Nodes[1].EP.Alloc(window)
	fill(cl.Nodes[0].EP.Mem()[src:src+window], 5)
	return cl, c01, src, dst
}

// runMeasured spawns body as a process, runs the cluster, and fails the
// test if the measurement never finished.
func runMeasured(t *testing.T, cl *cluster.Cluster, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	cl.Env.Go("measure", func(p *sim.Proc) {
		body(p)
		done = true
	})
	cl.Env.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("measured workload did not complete")
	}
}

// TestAllocsEagerWrite gates the eager Do+Wait write loop at one
// allocation per operation: the Handle. The wait/wake round trip, the
// payload snapshot, every frame on the wire, and the receiver's whole
// dispatch path must be allocation-free.
func TestAllocsEagerWrite(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	cfg.Seed = 3
	cl, c01, src, dst := allocPair(t, cfg)
	op := core.Op{Remote: dst, Local: src, Size: 512, Kind: frame.OpWrite}
	var allocs float64
	runMeasured(t, cl, func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			c01.MustDo(p, op).Wait(p)
		}
		allocs = testing.AllocsPerRun(100, func() {
			c01.MustDo(p, op).Wait(p)
		})
	})
	gateAllocs(t, "eager write+wait", allocs, 1)
}

// TestAllocsSQBatch gates the doorbell path — Post a batch, Ring, drain
// the completion queue — at one allocation per operation (each posted
// descriptor still surfaces one Handle internally). Submission-queue
// double-buffering, ring-time snapshots, completion staging, and the
// CQ mailbox must all recycle.
func TestAllocsSQBatch(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	cfg.Seed = 3
	cl, c01, src, dst := allocPair(t, cfg)
	const batch = 8
	step := func(p *sim.Proc) {
		for i := 0; i < batch; i++ {
			c01.MustPost(core.Op{
				Remote: dst + uint64(i*256), Local: src + uint64(i*256),
				Size: 192, Kind: frame.OpWrite,
			})
		}
		c01.MustRing(p)
		for i := 0; i < batch; i++ {
			if comp := c01.WaitCQ(p); comp.Err != nil {
				t.Errorf("completion error: %v", comp.Err)
			}
		}
	}
	var allocs float64
	runMeasured(t, cl, func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			step(p)
		}
		allocs = testing.AllocsPerRun(50, func() { step(p) })
	})
	gateAllocs(t, "SQ batch post+ring+drain", allocs/batch, 1)
}

// TestAllocsReceiveDispatchBurst gates the batched receive-dispatch loop
// (Config.RxBurst) at one allocation per operation: burst jobs, their
// pooled frames, and the dispatch fan-out must come entirely from
// freelists once warm.
func TestAllocsReceiveDispatchBurst(t *testing.T) {
	cfg := cluster.TwoLink1G(2)
	cfg.Seed = 3
	cfg.Core.RxBurst = 4
	cl, c01, src, dst := allocPair(t, cfg)
	op := core.Op{Remote: dst, Local: src, Size: 512, Kind: frame.OpWrite}
	var allocs float64
	runMeasured(t, cl, func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			c01.MustDo(p, op).Wait(p)
		}
		allocs = testing.AllocsPerRun(100, func() {
			c01.MustDo(p, op).Wait(p)
		})
	})
	gateAllocs(t, "write+wait under RxBurst", allocs, 1)
}

// TestAllocsEagerRead documents the read budget: two allocations per
// operation — the requester's Handle plus the responder's synthesized
// txOp in serveRead, which has no user handle to embed into. The reply
// payload itself snapshots into a pooled buffer.
func TestAllocsEagerRead(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	cfg.Seed = 3
	// Each read re-arms the reply liveness guard; the stopped guard's
	// canceled event is recycled when its deadline surfaces, so the
	// event pool reaches steady state only after one DeadInterval of
	// simulated time. Shrink it so the warmup loop covers that.
	cfg.Core.DeadInterval = 500 * sim.Microsecond
	cl, c01, src, dst := allocPair(t, cfg)
	op := core.Op{Remote: dst, Local: src, Size: 512, Kind: frame.OpRead}
	var allocs float64
	runMeasured(t, cl, func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			c01.MustDo(p, op).Wait(p)
		}
		allocs = testing.AllocsPerRun(100, func() {
			c01.MustDo(p, op).Wait(p)
		})
	})
	gateAllocs(t, "eager read+wait", allocs, 2)
}
