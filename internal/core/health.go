package core

// Health snapshots: point-in-time views of an endpoint and its
// connections for live introspection (obs.EndpointHealth JSON, the
// periodic health sampler, and medbench health timelines). Taking a
// snapshot is pure observation — it reads live protocol state and
// never touches timers, RNG, or the wire — so sampling cannot perturb
// a deterministic run.

import "multiedge/internal/obs"

// Health returns the connection's point-in-time health.
func (c *Conn) Health() obs.ConnHealth {
	h := obs.ConnHealth{
		Conn:        c.localID,
		Peer:        c.remoteNode,
		State:       c.healthState(),
		Incarnation: c.incarnation,
		Reconnects:  c.reconnTotal,
		SRTTUs:      float64(c.srtt) / 1000,
		RTTVarUs:    float64(c.rttvar) / 1000,
		RTOUs:       float64(c.currentRTO()) / 1000,
		Inflight:    c.inflight(),
		Window:      c.ep.cfg.Window,
		Cwnd:        c.cwnd,
		SQDepth:     len(c.sq),
		CQDepth:     c.cq.Len(),
		BytesAcked:  c.bytesAcked,
	}
	h.Rails = make([]obs.RailHealth, c.links)
	for li := 0; li < c.links; li++ {
		h.Rails[li] = obs.RailHealth{
			SRTTUs:   float64(c.railSrtt[li]) / 1000,
			RTTVarUs: float64(c.railRttvar[li]) / 1000,
			RTOUs:    float64(c.railRTO(li)) / 1000,
		}
	}
	// Journal length: what a reconnect would replay — queued/in-flight
	// send ops plus pending reads whose requests were already fully
	// acknowledged (a read mid-request appears in txOps too; dedupe).
	h.JournalOps = len(c.txOps)
	for id := range c.pendingReads {
		inTx := false
		for _, t := range c.txOps {
			if t.id == id {
				inTx = true
				break
			}
		}
		if !inTx {
			h.JournalOps++
		}
	}
	return h
}

// healthState names the connection's lifecycle state.
func (c *Conn) healthState() string {
	switch {
	case c.failed:
		return "failed"
	case c.closed:
		return "closed"
	case c.reconnecting:
		return "reconnecting"
	case !c.established.Fired():
		return "dialing"
	}
	return "established"
}

// Health returns the endpoint's point-in-time health, including every
// tabled connection in stable (dial/accept) order.
func (ep *Endpoint) Health() obs.EndpointHealth {
	h := obs.EndpointHealth{
		At:           ep.env.Now(),
		Node:         ep.node,
		ActiveConns:  ep.conns.len(),
		SchedCtrlQ:   ep.ctrlQ.size(),
		SchedSendQ:   ep.sendQ.size(),
		WheelEntries: ep.wheel.Len(),
	}
	for _, c := range ep.connOrder {
		h.Conns = append(h.Conns, c.Health())
	}
	return h
}
