package core

// connShards is the shard count of the endpoint connection table. A
// power of two, so the shard pick is a mask. 16 shards keep each map
// small (≤64 entries at the 1024-conn design point), which bounds both
// lookup probe lengths and the rehash pauses Go maps take as they grow.
const connShards = 16

// connTable is the endpoint's connection demux, sharded by connection
// id. Only keyed operations exist — iteration goes through the
// endpoint's connOrder slice, which preserves the deterministic
// creation order the scheduler's fairness (and golden runs) rely on.
type connTable struct {
	shards [connShards]map[uint32]*Conn
	n      int
}

func newConnTable() *connTable {
	t := &connTable{}
	for i := range t.shards {
		t.shards[i] = make(map[uint32]*Conn)
	}
	return t
}

func (t *connTable) get(id uint32) (*Conn, bool) {
	c, ok := t.shards[id&(connShards-1)][id]
	return c, ok
}

func (t *connTable) put(id uint32, c *Conn) {
	s := t.shards[id&(connShards-1)]
	if _, ok := s[id]; !ok {
		t.n++
	}
	s[id] = c
}

func (t *connTable) del(id uint32) {
	s := t.shards[id&(connShards-1)]
	if _, ok := s[id]; ok {
		t.n--
		delete(s, id)
	}
}

func (t *connTable) len() int { return t.n }
