package core

// connFIFO is a connection service queue (scheduler and QoS class
// queues) with amortized-zero-allocation push/pop churn. The previous
// pop-by-reslice (`q = q[1:]`) walked the slice off its backing array,
// so every steady-state service cycle eventually re-allocated it; here
// a head index advances instead and the slice resets to its base the
// moment the queue drains, so a long-lived queue reuses one backing
// array forever.
type connFIFO struct {
	q    []*Conn // live entries are q[head:]
	head int
}

// push appends c at the tail.
func (f *connFIFO) push(c *Conn) { f.q = append(f.q, c) }

// pop removes and returns the head connection, or nil when empty. The
// vacated slot is cleared so the queue never pins a torn-down conn.
func (f *connFIFO) pop() *Conn {
	if f.head == len(f.q) {
		return nil
	}
	c := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head == len(f.q) {
		f.q, f.head = f.q[:0], 0
	}
	return c
}

// size returns the number of queued connections.
func (f *connFIFO) size() int { return len(f.q) - f.head }

// empty reports whether the queue has no entries.
func (f *connFIFO) empty() bool { return f.head == len(f.q) }
