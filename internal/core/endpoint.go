package core

import (
	"fmt"

	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/obs"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// Endpoint is one node's instance of the MultiEdge protocol layer: the
// kernel character device of IPPS'07 §2.1, owning the node's NICs, its
// remotely accessible memory, and all connections.
type Endpoint struct {
	env   *sim.Env
	node  int
	cfg   Config
	costs hostmodel.Costs
	cpus  hostmodel.CPUs
	nics  []*phys.NIC

	mem    []byte
	memBrk uint64

	conns      *connTable        // by local connection id, sharded
	connOrder  []*Conn           // stable iteration order for fairness
	byPeer     map[peerKey]*Conn // handshake dedupe
	nextConnID uint32
	acceptAll  bool
	accepted   sim.Mailbox[*Conn]

	wheel *sim.Wheel // coalesced protocol timers (Config.TimerWheelTick)

	threadActive bool
	txRR         int // round-robin cursor over connections for send work
	rxPrefer     int // NIC to poll first (the one that interrupted, NAPI-style)

	// Hot-path scheduling plumbing: the protocol thread's continuations
	// are built once here and passed by reference, so steady-state frame
	// work schedules no per-event closures (see SchedAtArg/SubmitArg).
	// rxJobFree recycles the per-frame dispatch records.
	threadStepFn func()
	ctrlStepFn   func(any) // arg *Conn: ACK/NACK service (SchedQueue + QoS)
	sendStepFn   func(any) // arg *Conn: data service (SchedQueue)
	qosSendFn    func(any) // arg *Conn: data service charged to qosDispatchCls
	legacyCtrlFn func(any) // arg *Conn: legacy scan ctrl service
	legacySendFn func(any) // arg *Conn: legacy scan data service
	dispatchFn   func(any) // arg *rxJob: decoded-frame dispatch
	fireSigFn    func(any) // arg *sim.Signal: user wake (handle/CQ completion)
	burstFn      func()    // drains rxBurst: batched dispatch (Config.RxBurst)
	rxJobFree    []*rxJob
	rxBurst      []*rxJob // frames polled this burst, awaiting dispatch

	qosDispatchCls int // class of the in-flight qosSendFn dispatch

	// Connection scheduler (Config.SchedQueue): FIFO queues of
	// connections with pending control or data work. A connection sits
	// in each queue at most once (inCtrlQ/inSendQ); entries are
	// re-validated on pop, so a conn whose work evaporated (acked,
	// closed) costs one skip instead of an O(conns) rescan.
	ctrlQ connFIFO
	sendQ connFIFO

	// Multi-tenant QoS (Config.QoS): per-class scheduler and quota
	// state, plus the DWFQ cursors (see qos.go). nil when the layer is
	// off.
	qos          []qosClass
	qosCtrlCur   int  // weighted-round-robin cursor over class ctrl queues
	qosSendCur   int  // DWFQ cursor over class send queues
	qosServing   int  // class picked by the last qosPopSend, for the charge
	qosPaceArmed bool // a wire-pacing wake is already scheduled

	notifyAll *sim.Mailbox[Notification]

	regions []memRegion // registered memory (EnforceRegistration)

	engine *sim.Resource // NIC protocol engine (Config.Offload)

	tracer *trace.Trace // optional frame-level event trace

	rec *obs.Recorder // optional flight recorder (nil = off)

	obs          *obs.Registry  // optional metrics/span registry (nil = off)
	holdHist     *obs.Histogram // receive-side hold duration, µs
	sqDepth      *obs.Gauge     // posted-but-unrung descriptors, all conns
	cqDepth      *obs.Gauge     // unpolled completions, all conns
	doorbellHist *obs.Histogram // descriptors issued per doorbell
	coalesceHist *obs.Histogram // sub-ops packed per MultiData frame
	rtoHist      *obs.Histogram // adaptive RTO estimate at each update, µs
	backoffHist  *obs.Histogram // consecutive-expiry depth at each RTO firing
	reconnHist   *obs.Histogram // outage duration per completed reconnect, µs
	redialHist   *obs.Histogram // dialer redial attempts per completed reconnect

	Stats Stats
}

// memRegion is one registered local buffer.
type memRegion struct {
	addr uint64
	size int
}

// rxJob carries one decoded frame from the protocol-CPU charge to its
// dispatch. Records are recycled through Endpoint.rxJobFree so the
// steady-state receive path allocates nothing; the frame (and therefore
// the payload, which aliases fr.Buf) is released by dispatchFn after
// dispatchFrame returns, so any code that buffers a payload past
// dispatch must copy it first (see the hold paths in conn.go).
type rxJob struct {
	fr      *phys.Frame
	src     frame.Addr
	h       frame.Header
	payload []byte
	link    int
	ecn     bool // congestion-experienced mark carried out of band by fr
}

func (ep *Endpoint) getRxJob() *rxJob {
	if n := len(ep.rxJobFree); n > 0 {
		j := ep.rxJobFree[n-1]
		ep.rxJobFree = ep.rxJobFree[:n-1]
		return j
	}
	return &rxJob{}
}

type peerKey struct {
	node   int
	connID uint32
}

// NewEndpoint creates the protocol layer for a node. The endpoint
// installs itself as the interrupt host of every NIC.
func NewEndpoint(env *sim.Env, node int, cfg Config, costs hostmodel.Costs, cpus hostmodel.CPUs, nics []*phys.NIC) *Endpoint {
	if cfg.Window <= 0 || cfg.AckEvery <= 0 || cfg.MemBytes <= 0 {
		panic("core: invalid Config")
	}
	ep := &Endpoint{
		env: env, node: node, cfg: cfg, costs: costs, cpus: cpus, nics: nics,
		mem:        make([]byte, cfg.MemBytes),
		conns:      newConnTable(),
		byPeer:     make(map[peerKey]*Conn),
		nextConnID: 1,
		acceptAll:  true,
	}
	ep.threadStepFn = ep.threadStep
	ep.ctrlStepFn = func(x any) {
		c := x.(*Conn)
		c.sendCtrl()
		ep.kickConn(c)
		ep.threadStep()
	}
	ep.sendStepFn = func(x any) {
		c := x.(*Conn)
		c.sendNextDataFrame()
		ep.kickConn(c)
		ep.threadStep()
	}
	ep.qosSendFn = func(x any) {
		c := x.(*Conn)
		n := c.sendNextDataFrame()
		ep.qosChargeSend(ep.qosDispatchCls, n)
		ep.kickConn(c)
		ep.threadStep()
	}
	ep.legacyCtrlFn = func(x any) {
		x.(*Conn).sendCtrl()
		ep.threadStep()
	}
	ep.legacySendFn = func(x any) {
		x.(*Conn).sendNextDataFrame()
		ep.threadStep()
	}
	ep.dispatchFn = func(x any) {
		j := x.(*rxJob)
		fr, src, h, payload, link, ecn := j.fr, j.src, j.h, j.payload, j.link, j.ecn
		*j = rxJob{}
		ep.rxJobFree = append(ep.rxJobFree, j)
		ep.dispatchFrame(src, h, payload, link, ecn)
		fr.Release()
		ep.threadStep()
	}
	ep.fireSigFn = func(x any) { x.(*sim.Signal).Fire(ep.env) }
	ep.burstFn = func() {
		jobs := ep.rxBurst
		for k, j := range jobs {
			fr, src, h, payload, link, ecn := j.fr, j.src, j.h, j.payload, j.link, j.ecn
			*j = rxJob{}
			ep.rxJobFree = append(ep.rxJobFree, j)
			jobs[k] = nil
			ep.dispatchFrame(src, h, payload, link, ecn)
			fr.Release()
		}
		// Reset before re-entering the loop: threadStep may start the
		// next burst, which refills the same backing array.
		ep.rxBurst = jobs[:0]
		ep.threadStep()
	}
	if cfg.TimerWheelTick > 0 {
		ep.wheel = sim.NewWheel(env, cfg.TimerWheelTick)
	}
	if len(cfg.QoS) > 0 {
		if !cfg.SchedQueue {
			panic("core: Config.QoS requires Config.SchedQueue")
		}
		ep.initQoS()
	}
	if cfg.CongestionControl.Enable && !cfg.SchedQueue {
		// The congestion window gates transmissions between the scheduler
		// and the wire; without the scheduler queue there is no per-conn
		// service loop to park a window-blocked conn on.
		panic("core: Config.CongestionControl requires Config.SchedQueue")
	}
	for _, n := range nics {
		n.SetHost(ep)
	}
	if cfg.Offload {
		if ep.cfg.OffloadFactor <= 0 {
			ep.cfg.OffloadFactor = 1 // pipelined NIC engine at host parity
		}
		ep.engine = sim.NewResource(fmt.Sprintf("n%d/nic-engine", node))
	}
	return ep
}

// protoRes returns the resource protocol work runs on: the host
// protocol CPU, or the NIC engine in offload mode.
func (ep *Endpoint) protoRes() *sim.Resource {
	if ep.engine != nil {
		return ep.engine
	}
	return ep.cpus.Proto
}

// protoCost scales a unit of per-frame protocol work for the executing
// engine (embedded NIC cores are slower than the host CPU).
func (ep *Endpoint) protoCost(t sim.Time) sim.Time {
	if ep.engine != nil {
		return t * sim.Time(ep.cfg.OffloadFactor)
	}
	return t
}

// Engine exposes the NIC protocol engine (nil unless offloading), for
// utilization reporting.
func (ep *Endpoint) Engine() *sim.Resource { return ep.engine }

// timer is the common handle for protocol timers, satisfied by both
// plain heap timers (*sim.Timer) and wheel timers (*sim.WheelTimer) so
// connections need not know which backing Config selected.
type timer interface {
	Stop() bool
	Pending() bool
}

// afterTimer schedules a protocol timer: through the endpoint's timer
// wheel when Config.TimerWheelTick is set, else as a plain heap event.
func (ep *Endpoint) afterTimer(d sim.Time, fn func()) timer {
	if ep.wheel != nil {
		return ep.wheel.After(d, fn)
	}
	return ep.env.After(d, fn)
}

// rearmTimer is afterTimer for periodically re-armed protocol timers:
// on the heap backing it re-points the existing Timer handle in place
// (sim.Env.Rearm) instead of allocating a fresh one per arm — the RTO
// timer re-arms on every transmit, so this is a per-frame allocation.
// The wheel backing already recycles its entries.
func (ep *Endpoint) rearmTimer(t timer, d sim.Time, fn func()) timer {
	if ep.wheel != nil {
		return ep.wheel.After(d, fn)
	}
	st, _ := t.(*sim.Timer)
	return ep.env.Rearm(st, d, fn)
}

// afterDaemonTimer is afterTimer with daemon semantics: the timer never
// keeps a drained simulation alive (heartbeats, liveness guards).
func (ep *Endpoint) afterDaemonTimer(d sim.Time, fn func()) timer {
	if ep.wheel != nil {
		return ep.wheel.AfterDaemon(d, fn)
	}
	return ep.env.AfterDaemon(d, fn)
}

// rearmDaemonTimer is afterDaemonTimer for re-armed daemon timers (the
// read-reply liveness guard arms per read): on the heap backing it
// re-points the existing Timer handle in place, like rearmTimer.
func (ep *Endpoint) rearmDaemonTimer(t timer, d sim.Time, fn func()) timer {
	if ep.wheel != nil {
		return ep.wheel.AfterDaemon(d, fn)
	}
	st, _ := t.(*sim.Timer)
	return ep.env.RearmDaemon(st, d, fn)
}

// kickConn notes that c may have gained control or data work and makes
// sure the protocol thread will look at it: under Config.SchedQueue the
// connection enqueues itself (once per queue), otherwise the thread's
// scan will find it. Every conn-side state change that can create work
// funnels through here via Conn.kick.
func (ep *Endpoint) kickConn(c *Conn) {
	if ep.qosOn() {
		ep.qosKickConn(c)
		ep.wakeThread()
		return
	}
	if ep.cfg.SchedQueue {
		if !c.inCtrlQ && c.ctrlPending() {
			c.inCtrlQ = true
			ep.ctrlQ.push(c)
			ep.recEvent(c.localID, obs.RecSched, 0, int64(ep.ctrlQ.size()))
		}
		if !c.inSendQ && c.sendable() {
			c.inSendQ = true
			ep.sendQ.push(c)
			ep.recEvent(c.localID, obs.RecSched, 1, int64(ep.sendQ.size()))
		}
	}
	ep.wakeThread()
}

// popCtrl returns the next connection with a pending explicit ACK/NACK,
// discarding entries whose work evaporated since they were queued.
func (ep *Endpoint) popCtrl() *Conn {
	for {
		c := ep.ctrlQ.pop()
		if c == nil {
			return nil
		}
		c.inCtrlQ = false
		if c.ctrlPending() {
			return c
		}
	}
}

// popSend returns the next connection with transmittable data work.
func (ep *Endpoint) popSend() *Conn {
	for {
		c := ep.sendQ.pop()
		if c == nil {
			return nil
		}
		c.inSendQ = false
		if c.sendable() {
			return c
		}
	}
}

// removeConn unlinks a torn-down connection from the endpoint: demux
// table, fairness order and handshake dedupe. Scheduler queue entries
// are left to lazy invalidation (closed conns fail the pop re-check).
// Idempotent; frames that arrive for a removed connection are dropped
// at dispatch, except retransmitted ConnClose frames, which get a
// stateless acknowledgement so the peer's close handshake still
// terminates.
func (ep *Endpoint) removeConn(c *Conn) {
	if _, ok := ep.conns.get(c.localID); !ok {
		return
	}
	ep.conns.del(c.localID)
	for i, cc := range ep.connOrder {
		if cc == c {
			ep.connOrder = append(ep.connOrder[:i], ep.connOrder[i+1:]...)
			break
		}
	}
	k := peerKey{node: c.remoteNode, connID: c.remoteID}
	if ep.byPeer[k] == c {
		delete(ep.byPeer, k)
	}
}

// ActiveConns returns how many connections the endpoint currently
// carries (closed and failed conns are removed from the table).
func (ep *Endpoint) ActiveConns() int { return ep.conns.len() }

// SetTrace attaches a frame-level event trace (nil disables). Tracing
// records transmit/receive/reorder/retransmission events for the
// paper-style network-traffic analysis.
func (ep *Endpoint) SetTrace(t *trace.Trace) { ep.tracer = t }

// trc records one trace event if tracing is enabled.
func (ep *Endpoint) trc(conn uint32, k trace.Kind, seq uint32, n int) {
	if ep.tracer != nil {
		ep.tracer.Add(ep.node, conn, k, seq, n)
	}
}

// SetRecorder attaches a flight recorder (nil disables). Recording is a
// nil-checked store into a preallocated ring — no allocation, no RNG,
// no scheduled events — so the recorder observes without perturbing the
// simulation and stress harnesses leave it on unconditionally.
func (ep *Endpoint) SetRecorder(r *obs.Recorder) { ep.rec = r }

// Recorder returns the attached flight recorder (nil when off).
func (ep *Endpoint) Recorder() *obs.Recorder { return ep.rec }

// recEvent records one flight-recorder event if recording is enabled.
func (ep *Endpoint) recEvent(conn uint32, k obs.RecKind, a, b int64) {
	if ep.rec != nil {
		ep.rec.Record(ep.env.Now(), conn, k, a, b)
	}
}

// SetObs attaches the observability registry (nil disables). Metrics
// are mirrored from Stats by a collector at gather time (see
// Stats.Collector), so the per-frame hot path pays only nil checks;
// span recording additionally requires Registry.EnableSpans.
func (ep *Endpoint) SetObs(r *obs.Registry) {
	ep.obs = r
	ep.holdHist = r.Histogram("core_hold_us", nil, obs.NodeLabel(ep.node))
	ep.sqDepth = r.Gauge("core_sq_depth", obs.NodeLabel(ep.node))
	ep.cqDepth = r.Gauge("core_cq_depth", obs.NodeLabel(ep.node))
	ep.doorbellHist = r.Histogram("core_doorbell_batch_ops", nil, obs.NodeLabel(ep.node))
	ep.coalesceHist = r.Histogram("core_coalesce_subops", nil, obs.NodeLabel(ep.node))
	ep.rtoHist = r.Histogram("core_rto_us", nil, obs.NodeLabel(ep.node))
	ep.backoffHist = r.Histogram("core_rto_backoff", nil, obs.NodeLabel(ep.node))
	ep.reconnHist = r.Histogram("core_reconnect_outage_us", nil, obs.NodeLabel(ep.node))
	ep.redialHist = r.Histogram("core_reconnect_attempts", nil, obs.NodeLabel(ep.node))
	r.AddCollector(ep.Stats.Collector(ep.node))
	// Scaling gauges are sampled at gather time straight from the live
	// structures, so the hot path (kick/pop/arm) pays nothing for them.
	nl := obs.NodeLabel(ep.node)
	r.AddCollector(func(emit func(obs.Sample)) {
		g := func(name string, v float64) {
			emit(obs.Sample{Name: name, Labels: []obs.Label{nl}, Value: v, Type: obs.TypeGauge})
		}
		g("core_active_conns", float64(ep.conns.len()))
		g("core_sched_queue_depth", float64(ep.ctrlQ.size()+ep.sendQ.size()+ep.qosSchedDepth()))
		g("core_timer_wheel_entries", float64(ep.wheel.Len()))
	})
	if ep.qosOn() {
		r.AddCollector(ep.qosCollector())
	}
}

// noteSQDepth tracks the node-wide submission-queue depth gauge (nil-safe
// when observability is off).
func (ep *Endpoint) noteSQDepth(d int) {
	if ep.sqDepth != nil {
		ep.sqDepth.Add(float64(d))
	}
}

// noteCQDepth tracks the node-wide completion-queue depth gauge.
func (ep *Endpoint) noteCQDepth(d int) {
	if ep.cqDepth != nil {
		ep.cqDepth.Add(float64(d))
	}
}

// Obs returns the attached registry (nil when observability is off).
func (ep *Endpoint) Obs() *obs.Registry { return ep.obs }

// Node returns the node id this endpoint runs on.
func (ep *Endpoint) Node() int { return ep.node }

// Env returns the simulation environment.
func (ep *Endpoint) Env() *sim.Env { return ep.env }

// CPUs returns the node's modelled processors.
func (ep *Endpoint) CPUs() hostmodel.CPUs { return ep.cpus }

// NICs returns the node's network interfaces.
func (ep *Endpoint) NICs() []*phys.NIC { return ep.nics }

// Config returns the protocol configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// Mem exposes the endpoint's remotely accessible address space. The
// local application reads and writes it directly (it is the process'
// own memory); remote nodes access it through RDMA operations.
func (ep *Endpoint) Mem() []byte { return ep.mem }

// RegisterMemory registers [addr, addr+size) as a valid local buffer
// for operation initiation — the paper's registration primitive. Only
// consulted when Config.EnforceRegistration is set; receive buffers
// never need registration (data is delivered directly into the virtual
// address space, IPPS'07 §2.2).
func (ep *Endpoint) RegisterMemory(addr uint64, size int) {
	if size <= 0 || addr+uint64(size) > uint64(len(ep.mem)) {
		panic("core: RegisterMemory: region outside address space")
	}
	ep.regions = append(ep.regions, memRegion{addr: addr, size: size})
}

// DeregisterMemory removes a previously registered region (exact match).
func (ep *Endpoint) DeregisterMemory(addr uint64) {
	for i, r := range ep.regions {
		if r.addr == addr {
			ep.regions = append(ep.regions[:i], ep.regions[i+1:]...)
			return
		}
	}
}

// registered reports whether [addr, addr+size) lies inside one
// registered region. Zero-size buffers are always permitted.
func (ep *Endpoint) registered(addr uint64, size int) bool {
	if size == 0 {
		return true
	}
	for _, r := range ep.regions {
		if addr >= r.addr && addr+uint64(size) <= r.addr+uint64(r.size) {
			return true
		}
	}
	return false
}

// Alloc reserves size bytes in the address space and returns the base
// address. Allocations are 64-byte aligned and never freed (arena
// style); it panics when the address space is exhausted.
func (ep *Endpoint) Alloc(size int) uint64 {
	const align = 64
	base := (ep.memBrk + align - 1) &^ (align - 1)
	if base+uint64(size) > uint64(len(ep.mem)) {
		panic(fmt.Sprintf("core: node %d out of memory: need %d at %d of %d",
			ep.node, size, base, len(ep.mem)))
	}
	ep.memBrk = base + uint64(size)
	return base
}

// ---------------------------------------------------------------------
// Interrupts and the protocol kernel thread (IPPS'07 §2.6).
//
// The interrupt handler masks the NIC and wakes the protocol thread.
// The thread polls every NIC for received frames and transmit
// completions, performs all per-frame work on the protocol CPU, and
// re-enables interrupts only when no work remains.
// ---------------------------------------------------------------------

// Interrupt implements phys.Host.
func (ep *Endpoint) Interrupt(n *phys.NIC) {
	n.Mask()
	for i, nn := range ep.nics {
		if nn == n {
			ep.rxPrefer = i // service the interrupting NIC first
			break
		}
	}
	intr := ep.costs.Interrupt
	if ep.engine != nil {
		// On-NIC event dispatch, not a host interrupt.
		intr = 100 * sim.Nanosecond
	}
	ep.protoRes().Submit(ep.env, ep.protoCost(intr), nil)
	ep.wakeThread()
}

// wakeThread starts the protocol thread if it is idle. It also serves as
// the doorbell rung by operation initiation.
func (ep *Endpoint) wakeThread() {
	if ep.threadActive {
		return
	}
	ep.threadActive = true
	wake := ep.costs.Wakeup
	if ep.engine != nil {
		// The NIC engine polls; no kernel-thread wakeup is paid.
		wake = 100 * sim.Nanosecond
	}
	ep.protoRes().Submit(ep.env, ep.protoCost(wake), ep.threadStepFn)
}

// threadStep performs one unit of protocol work and reschedules itself
// until no work remains, then unmasks interrupts and sleeps.
func (ep *Endpoint) threadStep() {
	// 1. Retire transmit completions (cheap, batched).
	var txDone int
	for _, n := range ep.nics {
		txDone += n.TakeTxDone()
	}
	if txDone > 0 {
		ep.protoRes().Submit(ep.env, ep.protoCost(sim.Time(txDone)*ep.costs.TxDone), ep.threadStepFn)
		return
	}
	// 2. Receive, starting with the NIC that interrupted and sticking
	// with it until its ring drains (NAPI-style batching). Config.RxBurst
	// additionally batches several frames under one scheduler wake.
	if ep.cfg.RxBurst > 1 {
		if ep.pollRxBurst() {
			return
		}
	} else {
		for i := 0; i < len(ep.nics); i++ {
			idx := (ep.rxPrefer + i) % len(ep.nics)
			if fr := ep.nics[idx].PollRxOne(); fr != nil {
				ep.rxPrefer = idx
				ep.processRxFrame(fr, idx)
				return
			}
		}
	}
	// 3+4. Send pending control frames (ACK/NACK), then one data frame
	// from a connection with window space. Under Config.SchedQueue both
	// come from O(1) FIFO pops; a connection with more work re-enqueues
	// at the tail, so service stays fair round-robin. The legacy path
	// scans every connection per step, which is fine for a handful of
	// conns and byte-identical to the pinned golden runs.
	if ep.qosOn() {
		// Multi-tenant scheduling: weighted-fair pops across the class
		// queues, with each transmitted data frame charged back to the
		// class it was served for (deficit and token bucket).
		if c := ep.qosPopCtrl(); c != nil {
			ep.protoRes().SubmitArg(ep.env, ep.protoCost(ep.costs.AckProc), ep.ctrlStepFn, c)
			return
		}
		if ep.qosSendWork() && ep.qosNICBusy() {
			// Wire-pacing: with every NIC's transmit queue at the bound,
			// dispatching now would just bury frames in the NIC FIFO where
			// DWFQ no longer decides their order. Hold them in the class
			// queues and come back when the head frame clears the wire.
			ep.qosArmPace()
		} else if c := ep.qosPopSend(); c != nil {
			// The thread loop is strictly serialized (each dispatched
			// branch calls threadStep again when it finishes), so at most
			// one data dispatch is in flight and a single field carries
			// the served class to the charge.
			ep.qosDispatchCls = ep.qosServing
			ep.protoRes().SubmitArg(ep.env, ep.protoCost(ep.costs.FrameTx), ep.qosSendFn, c)
			return
		}
	} else if ep.cfg.SchedQueue {
		if c := ep.popCtrl(); c != nil {
			ep.protoRes().SubmitArg(ep.env, ep.protoCost(ep.costs.AckProc), ep.ctrlStepFn, c)
			return
		}
		if c := ep.popSend(); c != nil {
			ep.protoRes().SubmitArg(ep.env, ep.protoCost(ep.costs.FrameTx), ep.sendStepFn, c)
			return
		}
	} else {
		for i := 0; i < len(ep.connOrder); i++ {
			c := ep.connOrder[(ep.txRR+i)%len(ep.connOrder)]
			if c.ctrlPending() {
				ep.txRR = (ep.txRR + i + 1) % len(ep.connOrder)
				ep.protoRes().SubmitArg(ep.env, ep.protoCost(ep.costs.AckProc), ep.legacyCtrlFn, c)
				return
			}
		}
		for i := 0; i < len(ep.connOrder); i++ {
			c := ep.connOrder[(ep.txRR+i)%len(ep.connOrder)]
			if c.sendable() {
				ep.txRR = (ep.txRR + i + 1) % len(ep.connOrder)
				ep.protoRes().SubmitArg(ep.env, ep.protoCost(ep.costs.FrameTx), ep.legacySendFn, c)
				return
			}
		}
	}
	// No work: sleep and unmask (re-raises if anything slipped in).
	ep.threadActive = false
	for _, n := range ep.nics {
		n.Unmask()
	}
}

// processRxFrame charges the receive cost of one frame, then applies its
// protocol effects and continues the thread loop. link is the index of
// the NIC the frame arrived on.
func (ep *Endpoint) processRxFrame(fr *phys.Frame, link int) {
	_, src, h, payload, err := frame.Decode(fr.Buf)
	if err != nil {
		// Damaged frame that slipped past the FCS model: treat as loss.
		// The buffer dies here — without the release a pooled frame
		// leaked on every FCS escape.
		fr.Release()
		ep.protoRes().Submit(ep.env, ep.protoCost(ep.costs.FrameRx), ep.threadStepFn)
		return
	}
	var cost sim.Time
	switch h.Type {
	case frame.TypeData, frame.TypeReadReq, frame.TypeMultiData:
		cost = ep.protoCost(ep.costs.FrameRx)
		if ep.engine == nil {
			// Host path pays the kernel->user copy; an offloading NIC
			// DMAs payload directly into user memory.
			cost += ep.costs.Copy(len(payload))
		}
	default:
		cost = ep.protoCost(ep.costs.AckProc)
	}
	j := ep.getRxJob()
	j.fr, j.src, j.h, j.payload, j.link, j.ecn = fr, src, h, payload, link, fr.Ecn
	ep.protoRes().SubmitArg(ep.env, cost, ep.dispatchFn, j)
}

// pollRxBurst drains up to Config.RxBurst frames from the NIC rings and
// schedules their dispatch as one protocol-thread event charged the sum
// of the per-frame costs. It reports whether any frame was taken (the
// caller returns and the burst callback continues the thread loop). The
// per-frame cost model is identical to processRxFrame's; only the event
// granularity changes.
func (ep *Endpoint) pollRxBurst() bool {
	var cost sim.Time
	n := 0
	for n < ep.cfg.RxBurst {
		var fr *phys.Frame
		link := -1
		for i := 0; i < len(ep.nics); i++ {
			idx := (ep.rxPrefer + i) % len(ep.nics)
			if f := ep.nics[idx].PollRxOne(); f != nil {
				ep.rxPrefer = idx
				fr, link = f, idx
				break
			}
		}
		if fr == nil {
			break
		}
		n++
		_, src, h, payload, err := frame.Decode(fr.Buf)
		if err != nil {
			// Damaged frame past the FCS model: treated as loss, buffer
			// dies here, decode cost still charged.
			fr.Release()
			cost += ep.protoCost(ep.costs.FrameRx)
			continue
		}
		switch h.Type {
		case frame.TypeData, frame.TypeReadReq, frame.TypeMultiData:
			cost += ep.protoCost(ep.costs.FrameRx)
			if ep.engine == nil {
				cost += ep.costs.Copy(len(payload))
			}
		default:
			cost += ep.protoCost(ep.costs.AckProc)
		}
		j := ep.getRxJob()
		j.fr, j.src, j.h, j.payload, j.link, j.ecn = fr, src, h, payload, link, fr.Ecn
		ep.rxBurst = append(ep.rxBurst, j)
	}
	if n == 0 {
		return false
	}
	ep.protoRes().Submit(ep.env, cost, ep.burstFn)
	return true
}

// dispatchFrame routes a decoded frame to connection handling. ecn is
// the frame's out-of-band congestion-experienced mark (phys.Frame.Ecn),
// observed here because the mark belongs to the wire frame, not to the
// CRC-covered header the switches cannot rewrite.
func (ep *Endpoint) dispatchFrame(src frame.Addr, h frame.Header, payload []byte, link int, ecn bool) {
	switch h.Type {
	case frame.TypeConnReq:
		ep.handleConnReq(src, h)
		return
	case frame.TypeConnAck:
		ep.handleConnAck(src, h)
		return
	}
	c, ok := ep.conns.get(h.ConnID)
	if !ok {
		if h.Type == frame.TypeConnClose {
			// A retransmitted close for a connection we already tore
			// down and removed: re-acknowledge statelessly (the reply
			// is built purely from the incoming header, echoing its
			// incarnation) so the peer's handshake terminates instead
			// of retrying into silence.
			ah := frame.Header{Type: frame.TypeConnCloseAck, ConnID: uint32(h.OpID),
				Incarnation: h.Incarnation}
			buf := frame.MustEncode(src, ep.nics[0].Addr(), &ah, nil)
			ep.nics[0].Transmit(&phys.Frame{Buf: buf, Dst: src, Src: ep.nics[0].Addr()})
		}
		return // stale frame for a connection we do not know
	}
	if ep.cfg.Reconnect {
		// Epoch fence: a frame from a dead incarnation — duplicated,
		// delayed in a deep queue, or replayed across a rail restore —
		// must never touch live connection state. While the conn is
		// parked in Reconnecting its own epoch is condemned too, so
		// matching-incarnation frames are equally stale.
		if h.Incarnation != c.incarnation || c.reconnecting {
			ep.Stats.StaleEpochDrops++
			ep.recEvent(c.localID, obs.RecStaleDrop, int64(h.Incarnation), int64(c.incarnation))
			return
		}
	}
	if h.Type == frame.TypeConnClose {
		// Peer-initiated teardown: acknowledge (idempotently — the
		// close may be retransmitted), stop every timer the conn owns,
		// and drop it from the tables. In a simultaneous close our own
		// handshake completes here too: the peer has committed to
		// teardown, and its side answers our retransmitted ConnClose
		// statelessly even after it forgets the conn.
		if c.closed && !c.failed && !c.closedSig.Fired() {
			c.stopCloseTimer()
			c.closedSig.Fire(ep.env)
		}
		c.closed = true
		c.stopTimers()
		ep.recEvent(c.localID, obs.RecClosed, 1, 0)
		ah := frame.Header{Type: frame.TypeConnCloseAck, ConnID: uint32(h.OpID),
			Incarnation: h.Incarnation}
		buf := frame.MustEncode(src, ep.nics[0].Addr(), &ah, nil)
		ep.nics[0].Transmit(&phys.Frame{Buf: buf, Dst: src, Src: ep.nics[0].Addr()})
		ep.removeConn(c)
		return
	}
	if h.Type == frame.TypeConnCloseAck {
		if !c.closedSig.Fired() {
			c.stopCloseTimer()
			c.closedSig.Fire(ep.env)
			ep.removeConn(c)
		}
		return
	}
	if c.closed {
		return // late frames for a torn-down (or failed) connection
	}
	c.lastHeard = ep.env.Now()
	if ecn {
		// A switch queue along the path marked this frame: remember it so
		// the next ack-bearing frame echoes congestion to the sender.
		ep.Stats.EcnMarksSeen++
		c.ccEcnRx++
	}
	if h.EcnEcho {
		// The peer echoed marks our own data picked up in the fabric.
		c.ccOnEcnEcho()
	}
	switch h.Type {
	case frame.TypeData, frame.TypeReadReq, frame.TypeMultiData:
		c.handleData(h, payload, link)
	case frame.TypeAck:
		ep.Stats.CtrlRecv++
		c.handleAck(h.Ack)
	case frame.TypeNack:
		ep.Stats.CtrlRecv++
		c.handleAck(h.Ack)
		if missing, err := frame.DecodeNackPayload(payload); err == nil {
			c.handleNack(missing)
		}
	case frame.TypeHeartbeat:
		ep.Stats.CtrlRecv++
		ep.Stats.HeartbeatsRecv++
		c.handleAck(h.Ack)
	case frame.TypeRailProbe:
		// Answer on the arrival NIC: rails are symmetric (NIC i peers
		// with NIC i through switch i), so the echo retraces the probed
		// rail and the round trip measures that rail alone.
		ep.Stats.CtrlRecv++
		c.handleAck(h.Ack)
		eh := frame.Header{Type: frame.TypeRailProbeEcho, ConnID: c.remoteID,
			Ack: c.rcvNxt, HasAck: true, Seq: h.Seq, OpID: h.OpID}
		c.sendFrameOn(&eh, nil, link)
	case frame.TypeRailProbeEcho:
		ep.Stats.CtrlRecv++
		c.handleAck(h.Ack)
		c.railApply(int(h.Seq), ep.env.Now()-sim.Time(h.OpID))
	case frame.TypeReset:
		// The peer abandoned the connection (its failure detector fired).
		// Fail our side too — without echoing a Reset back, which would
		// ping-pong between two live endpoints after a healed partition.
		ep.Stats.CtrlRecv++
		ep.Stats.ResetsRecv++
		c.peerLost(fmt.Errorf("core: connection to node %d reset by peer: %w", c.remoteNode, ErrPeerDead), false)
	}
}

// ---------------------------------------------------------------------
// Connection setup.
// ---------------------------------------------------------------------

// Dial establishes a connection to remoteNode, blocking the calling
// process until the handshake completes. The connection stripes frames
// over min(local NICs, links) physical links; links selects how many of
// the node's NICs to use (0 = all).
func (ep *Endpoint) Dial(p *sim.Proc, remoteNode int, links int) *Conn {
	if remoteNode == ep.node {
		panic("core: dial to self")
	}
	if links <= 0 || links > len(ep.nics) {
		links = len(ep.nics)
	}
	c := ep.newConn(remoteNode, links)
	ep.recEvent(c.localID, obs.RecDial, int64(links), int64(remoteNode))
	c.dialer = true // this side owns redialing under Config.Reconnect
	if ep.cfg.Reconnect {
		c.incarnation = 1 // first epoch; 0 means "incarnations unused"
	}
	attempts := 0
	var retry func()
	send := func() {
		h := frame.Header{Type: frame.TypeConnReq, ConnID: c.localID, OpID: uint64(links),
			Incarnation: c.incarnation}
		buf := frame.MustEncode(frame.NewAddr(remoteNode, 0), ep.nics[0].Addr(), &h, nil)
		ep.nics[0].Transmit(&phys.Frame{Buf: buf, Dst: frame.NewAddr(remoteNode, 0), Src: ep.nics[0].Addr()})
	}
	retry = func() {
		if c.established.Fired() {
			return
		}
		if mr := ep.cfg.MaxRetries; mr > 0 && attempts > mr {
			// The peer never answered: fail the dial instead of retrying
			// forever. The waiter is released; callers detect the outcome
			// via Conn.Failed / Conn.Err (operations on the conn error out).
			c.failed = true
			c.failErr = fmt.Errorf("core: dial to node %d: no answer after %d attempts: %w",
				remoteNode, attempts, ErrPeerDead)
			c.closed = true
			ep.Stats.PeerDeadEvents++
			ep.trc(c.localID, trace.PeerDead, 0, 0)
			ep.recEvent(c.localID, obs.RecFailed, int64(attempts), 0)
			ep.removeConn(c)
			c.established.Fire(ep.env)
			return
		}
		attempts++
		send()
		c.connTimer = ep.env.After(ep.cfg.ConnRetry, retry)
	}
	ep.env.After(0, retry)
	p.Wait(&c.established)
	return c
}

// GlobalNotify switches notification delivery from per-connection
// queues to a single endpoint-wide queue and returns it. A service
// process can then demultiplex notifications from every peer; the
// Notification's From field identifies the sender. Call before any
// notification traffic.
func (ep *Endpoint) GlobalNotify() *sim.Mailbox[Notification] {
	if ep.notifyAll == nil {
		ep.notifyAll = &sim.Mailbox[Notification]{}
	}
	return ep.notifyAll
}

// Accept blocks until a peer-initiated connection is established and
// returns it.
func (ep *Endpoint) Accept(p *sim.Proc) *Conn {
	return ep.accepted.Recv(p)
}

func (ep *Endpoint) newConn(remoteNode, links int) *Conn {
	c := newConn(ep, ep.nextConnID, remoteNode, links)
	ep.nextConnID++
	ep.conns.put(c.localID, c)
	ep.connOrder = append(ep.connOrder, c)
	return c
}

func (ep *Endpoint) handleConnReq(src frame.Addr, h frame.Header) {
	if !ep.acceptAll {
		return
	}
	key := peerKey{node: src.Node(), connID: h.ConnID}
	c, ok := ep.byPeer[key]
	if !ok {
		links := int(h.OpID)
		if links <= 0 || links > len(ep.nics) {
			links = len(ep.nics)
		}
		c = ep.newConn(src.Node(), links)
		c.remoteID = h.ConnID
		c.incarnation = h.Incarnation // adopt the dialer's epoch (0 = feature off)
		ep.byPeer[key] = c
		ep.recEvent(c.localID, obs.RecEstablished, int64(c.incarnation), int64(src.Node()))
		c.established.Fire(ep.env)
		c.startKeepalive()
		ep.accepted.Send(ep.env, c)
	} else if ep.cfg.Reconnect && h.Incarnation != c.incarnation {
		if !incarnNewer(h.Incarnation, c.incarnation) {
			// A redial from an epoch we already superseded (an earlier
			// outage's request, delayed in flight): acking it would
			// regress the connection. Drop it.
			ep.Stats.StaleEpochDrops++
			return
		}
		// The dialer is negotiating a successor epoch: be reborn into it,
		// then ack as usual. Repeated redials for the same incarnation
		// land in the equal branch and only re-send the ack.
		c.acceptReconnect(h.Incarnation)
	}
	// Always (re-)send the ConnAck: the previous one may have been lost.
	ah := frame.Header{Type: frame.TypeConnAck, ConnID: h.ConnID, OpID: uint64(c.localID),
		Incarnation: c.incarnation}
	buf := frame.MustEncode(src, ep.nics[0].Addr(), &ah, nil)
	ep.nics[0].Transmit(&phys.Frame{Buf: buf, Dst: src, Src: ep.nics[0].Addr()})
}

func (ep *Endpoint) handleConnAck(_ frame.Addr, h frame.Header) {
	c, ok := ep.conns.get(h.ConnID)
	if !ok {
		return
	}
	if c.established.Fired() {
		if ep.cfg.Reconnect && c.reconnecting && c.dialer && h.Incarnation == c.pendingIncarn {
			// The acceptor answered our redial: the successor epoch is
			// live on both sides. Duplicate acks (h.Incarnation already
			// installed, reconnecting false) fall through harmlessly.
			c.completeReconnect()
		}
		return
	}
	c.remoteID = uint32(h.OpID)
	if c.connTimer != nil {
		c.connTimer.Stop()
	}
	ep.recEvent(c.localID, obs.RecEstablished, int64(c.incarnation), int64(c.remoteNode))
	c.established.Fire(ep.env)
	c.startKeepalive()
}
