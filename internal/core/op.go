package core

import (
	"errors"
	"fmt"

	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// Op describes one remote memory operation: the options-struct form of
// the paper's positional RDMA_operation arguments. The same struct is
// accepted by the eager issue path (Conn.Do) and the submission-queue
// path (Conn.Post + Conn.Ring), so the two surfaces compose.
type Op struct {
	// Remote is the destination virtual address in the peer's address
	// space (writes) or the source address to fetch from (reads).
	Remote uint64
	// Local is the source address of a write or the destination address
	// of a read in this endpoint's address space.
	Local uint64
	// Size is the transfer length in bytes. A zero-size write is legal
	// and useful as a pure notification.
	Size int
	// Kind is frame.OpWrite or frame.OpRead.
	Kind frame.OpType
	// Flags combines frame.FenceBefore, frame.FenceAfter, frame.Notify
	// and frame.Solicit.
	Flags frame.OpFlags
	// Deadline, when non-zero, is an absolute simulation time by which
	// the issuer must be released: if the operation has not completed by
	// then, its handle fires with ErrDeadlineExceeded (and an errored
	// completion record if it was rung through the submission queue).
	// The transmission itself is not cancelled — frames already on the
	// wire stay valid and the transfer may still land — only the caller
	// stops waiting. A deadline already in the past expires immediately.
	Deadline sim.Time
	// Class, when positive, overrides the connection's traffic class for
	// this operation's QoS admission (quota accounting under Config.QoS).
	// 0 inherits the connection's class (Conn.SetClass). Ignored when
	// QoS is off; with QoS on an out-of-range class fails checkOp with
	// ErrBadClass.
	Class int
}

// MaxOpSize bounds a single operation's transfer length (the protocol
// header carries a 32-bit total; staying far below the wrap keeps
// arithmetic safe).
const MaxOpSize = 1 << 30

// Errors returned by the Op issue paths (Do, DoOn, Post, Ring). Each is
// wrapped with context; test with errors.Is.
var (
	// ErrNotEstablished: the connection handshake has not completed.
	ErrNotEstablished = errors.New("connection not established")
	// ErrClosed: the connection has been torn down.
	ErrClosed = errors.New("connection closed")
	// ErrBadOpKind: Op.Kind is neither OpWrite nor OpRead.
	ErrBadOpKind = errors.New("op kind must be OpWrite or OpRead")
	// ErrBadSize: negative transfer size.
	ErrBadSize = errors.New("negative transfer size")
	// ErrOversized: transfer larger than MaxOpSize.
	ErrOversized = errors.New("transfer exceeds MaxOpSize")
	// ErrBadRange: the local buffer lies outside the endpoint's address
	// space.
	ErrBadRange = errors.New("address range outside memory")
	// ErrUnregistered: Config.EnforceRegistration is on and the local
	// buffer is not inside a registered region.
	ErrUnregistered = errors.New("local buffer not registered")
	// ErrPeerDead: the peer stopped responding (retry budget or
	// DeadInterval exhausted, or a Reset frame arrived) and the
	// connection transitioned to Failed. Every queued and in-flight
	// operation completes with this error; the connection is unusable
	// and a fresh Dial/Accept pair is required to talk to the peer again.
	ErrPeerDead = errors.New("peer dead")
	// ErrDeadlineExceeded: Op.Deadline passed before the operation
	// completed; the waiter was released but the transfer itself was not
	// cancelled.
	ErrDeadlineExceeded = errors.New("op deadline exceeded")
	// ErrThrottled: the operation's QoS class is over its submission
	// quota (Config.QoS MaxQueued/MaxQueuedBytes) and the fail-fast
	// path (Post) refused it. Back off and retry, or use the blocking
	// path (Do), which waits for room instead.
	ErrThrottled = errors.New("tenant class over quota")
	// ErrBadClass: Op.Class is negative or outside the configured
	// Config.QoS table.
	ErrBadClass = errors.New("op class outside configured QoS classes")
)

// checkOp validates an operation against the connection and endpoint
// state. It has no side effects; the checks (and their order) mirror the
// panics of the legacy RDMAOperation path.
func (c *Conn) checkOp(op Op) error {
	if !c.established.Fired() {
		return fmt.Errorf("core: operation on unestablished connection to node %d: %w", c.remoteNode, ErrNotEstablished)
	}
	if c.failed {
		return fmt.Errorf("core: operation on failed connection to node %d: %w", c.remoteNode, c.failErr)
	}
	if c.closed {
		return fmt.Errorf("core: operation on closed connection to node %d: %w", c.remoteNode, ErrClosed)
	}
	if c.ep.cfg.EnforceRegistration && !c.ep.registered(op.Local, op.Size) {
		return fmt.Errorf("core: local buffer [%d,%d): %w", op.Local, op.Local+uint64(op.Size), ErrUnregistered)
	}
	if op.Size < 0 {
		return fmt.Errorf("core: size %d: %w", op.Size, ErrBadSize)
	}
	if op.Size > MaxOpSize {
		return fmt.Errorf("core: size %d > %d: %w", op.Size, MaxOpSize, ErrOversized)
	}
	switch op.Kind {
	case frame.OpWrite:
		if op.Local+uint64(op.Size) > uint64(len(c.ep.mem)) {
			return fmt.Errorf("core: write source [%d,%d) outside the %d-byte memory: %w",
				op.Local, op.Local+uint64(op.Size), len(c.ep.mem), ErrBadRange)
		}
	case frame.OpRead:
		if op.Local+uint64(op.Size) > uint64(len(c.ep.mem)) {
			return fmt.Errorf("core: read destination [%d,%d) outside the %d-byte memory: %w",
				op.Local, op.Local+uint64(op.Size), len(c.ep.mem), ErrBadRange)
		}
	default:
		return fmt.Errorf("core: kind %v: %w", op.Kind, ErrBadOpKind)
	}
	if op.Class != 0 && len(c.ep.qos) > 0 {
		if op.Class < 0 || op.Class >= len(c.ep.qos) {
			return fmt.Errorf("core: class %d with %d configured: %w", op.Class, len(c.ep.qos), ErrBadClass)
		}
	}
	return nil
}

// Do initiates op eagerly on the connection and returns its progress
// handle, charging the full per-operation issue cost (syscall,
// descriptor, user→kernel copy for writes) to the calling process on the
// application CPU. It is the options-struct successor of RDMAOperation
// and returns an error — ErrNotEstablished, ErrClosed, ErrBadRange,
// ErrOversized, ... — instead of panicking on invalid use. Many small
// operations to one peer are cheaper through Post + Ring.
func (c *Conn) Do(p *sim.Proc, op Op) (*Handle, error) {
	return c.DoOn(p, c.ep.cpus.App, op)
}

// DoOn is Do with an explicit CPU to charge the initiation to.
// User-level callers run in syscall context on the application CPU (use
// Do); handler-style callers — e.g. a DSM protocol handler servicing
// remote requests — run on the protocol CPU, like the kernel thread
// they model.
func (c *Conn) DoOn(p *sim.Proc, cpu *sim.Resource, op Op) (*Handle, error) {
	if err := c.checkOp(op); err != nil {
		return nil, err
	}
	ep := c.ep
	if ep.cfg.ccOn() {
		// Window backpressure: a spent congestion window with a full
		// backlog behind it blocks the issuer here, honoring Op.Deadline.
		// This gate runs before the quota gate because it takes no charge
		// — an error below cannot leak an admission already granted.
		if err := c.ccAdmitDo(p, op); err != nil {
			return nil, err
		}
	}
	if ep.qosOn() {
		// Blocking admission: over-quota issuers wait here for room —
		// graceful backpressure — honoring Op.Deadline. The charge taken
		// rides the txOp (enqueueOp) and is released on completion.
		if _, err := c.qosAdmitDo(p, op); err != nil {
			return nil, err
		}
	}
	// Snapshot the write payload into a pooled buffer when it fits one
	// frame (the common case for latency-sensitive small ops); the txOp
	// owns the buffer until completion or failure releases it.
	var data []byte
	var dataBuf *frame.Buf
	if op.Kind == frame.OpWrite {
		if op.Size > 0 && op.Size <= frame.BufCap {
			dataBuf = frame.GetBuf()
			data = append(dataBuf.Bytes()[:0], ep.mem[op.Local:op.Local+uint64(op.Size)]...)
		} else {
			data = append([]byte(nil), ep.mem[op.Local:op.Local+uint64(op.Size)]...)
		}
	}
	copyBytes := 0
	if op.Kind == frame.OpWrite && !ep.cfg.Offload {
		// Offloading NICs gather payload straight from user memory, so
		// only the host path pays the user->kernel copy.
		copyBytes = op.Size
	}
	cost := ep.costs.Initiation(copyBytes)
	if cpu == ep.cpus.App {
		ep.Stats.AppProtoTime += cost
	}
	p.Exec(cpu, cost)
	return c.enqueueOp(op, data, dataBuf, false), nil
}

// MustDo is Do for callers that guarantee the operation is valid; it
// panics on error, preserving the legacy RDMAOperation contract.
func (c *Conn) MustDo(p *sim.Proc, op Op) *Handle {
	h, err := c.Do(p, op)
	if err != nil {
		panic(err)
	}
	return h
}

// MustDoOn is DoOn with the MustDo panic-on-error contract.
func (c *Conn) MustDoOn(p *sim.Proc, cpu *sim.Resource, op Op) *Handle {
	h, err := c.DoOn(p, cpu, op)
	if err != nil {
		panic(err)
	}
	return h
}

// enqueueOp creates the send-side record for a validated, paid-for
// operation and hands it to the protocol thread. viaCQ marks operations
// issued through the submission queue, whose completions surface on the
// connection's completion queue as well as the returned handle.
func (c *Conn) enqueueOp(op Op, data []byte, dataBuf *frame.Buf, viaCQ bool) *Handle {
	ep := c.ep
	// One allocation carries both records: the handle is user-held (and
	// so can never be recycled), and the txOp is embedded in it. Every
	// handle keeps its descriptor: the CQ path surfaces it in
	// completions, and recovery (Config.Reconnect) re-synthesizes a read
	// request from it when the original txOp is long gone at replay time.
	h := &Handle{c: c, opID: c.nextOpID, size: op.Size, op: op}
	t := &h.t
	*t = txOp{
		id: c.nextOpID, opType: op.Kind, flags: op.Flags,
		remote: op.Remote, local: op.Local,
		data: data, dataBuf: dataBuf, total: uint32(op.Size),
		h: h,
	}
	c.nextOpID++
	if ep.qosOn() {
		// The admission charge (taken in DoOn or Post) transfers onto the
		// txOp, which releases it exactly once at completion or failure —
		// surviving reconnect replay, which re-queues these same objects.
		t.qosCls, t.qosOps, t.qosBytes = c.opClass(op), 1, op.Size
	}
	if viaCQ {
		h.cq = true
	}
	if op.Kind == frame.OpRead {
		c.pendingReads[t.id] = t.h
	}
	if op.Flags&frame.FenceAfter != 0 {
		// Forward fence, sender side: operations issued after t must
		// not be transmitted until t is fully acknowledged. Otherwise a
		// later op's frames could be performed at a receiver that has
		// not yet seen any frame of t and so cannot know to hold them.
		c.txFenced = append(c.txFenced, t.id)
	}
	if ep.obs.SpansEnabled() {
		name := "write"
		switch {
		case op.Kind == frame.OpRead:
			name = "read"
		case op.Flags&frame.Notify != 0:
			name = "write-notify"
		}
		t.span = ep.obs.StartOpSpan(
			obs.SpanID{Node: ep.node, Conn: c.localID, Op: t.id}, "core", name, op.Size)
	}
	if op.Deadline > 0 {
		h, d := t.h, op.Deadline-ep.env.Now()
		if d < 0 {
			d = 0
		}
		h.dlTimer = ep.env.After(d, func() { c.expireHandle(h, t) })
	}
	c.txOps = append(c.txOps, t)
	ep.Stats.OpsStarted++
	c.kick()
	return t.h
}

// ---------------------------------------------------------------------
// Submission queue, doorbell, completion queue.
//
// The eager path charges a full kernel crossing per operation. The SQ
// path splits issue in two: Post appends a descriptor to a user-mapped
// queue (cheap, no host-cost charge — the validation is a library-level
// check), and Ring pays ONE doorbell crossing for the whole batch. While
// walking the batch, runs of small writes are coalesced into shared
// MultiData frames (Config.CoalesceLimit), amortizing per-frame protocol
// and wire overhead as well. Completions fan out per operation on the
// connection's completion queue.
// ---------------------------------------------------------------------

// Completion reports one submission-queue operation that has completed:
// writes once every frame is acknowledged end-to-end, reads once the
// reply data has landed in local memory.
type Completion struct {
	OpID uint64 // the operation's connection-local id, in issue order
	Op   Op     // the posted descriptor
	// Err is nil for a successful completion; ErrPeerDead when the
	// connection failed with the operation pending, ErrDeadlineExceeded
	// when Op.Deadline released the waiter first (test with errors.Is).
	Err error
}

// Post validates op and appends it to the connection's submission queue.
// Nothing is charged and nothing is transmitted until Ring; the
// descriptor store is treated as free at simulation resolution (the
// calibrated SQPost cost is charged per descriptor by Ring). Post is
// also the fail-fast QoS admission point: a descriptor whose class is
// over quota (Config.QoS) is refused with ErrThrottled instead of
// queueing unboundedly.
func (c *Conn) Post(op Op) error {
	if err := c.checkOp(op); err != nil {
		return err
	}
	// The congestion gate runs before the quota gate: it takes no charge,
	// so a rejection here cannot leak an admission already taken.
	if c.ep.cfg.ccOn() {
		if err := c.ccAdmitFast(); err != nil {
			return err
		}
	}
	if c.ep.qosOn() {
		cls, ok := c.qosAdmitFast(op)
		if !ok {
			return fmt.Errorf("core: class %d to node %d: %w", cls, c.remoteNode, ErrThrottled)
		}
	}
	c.sq = append(c.sq, op)
	c.ep.noteSQDepth(1)
	return nil
}

// MustPost is Post for callers that guarantee the descriptor is valid.
func (c *Conn) MustPost(op Op) {
	if err := c.Post(op); err != nil {
		panic(err)
	}
}

// Ring rings the connection's doorbell on the application CPU: every
// posted descriptor is issued under a single batched charge
// (hostmodel.Costs.BatchIssue) and the submission queue empties. It
// returns the number of operations issued; ringing an empty queue is a
// free no-op. Completions surface on the completion queue (PollCQ /
// WaitCQ) in issue order.
func (c *Conn) Ring(p *sim.Proc) (int, error) {
	return c.RingOn(p, c.ep.cpus.App)
}

// MustRing is Ring for callers that guarantee the connection is open.
func (c *Conn) MustRing(p *sim.Proc) int {
	n, err := c.Ring(p)
	if err != nil {
		panic(err)
	}
	return n
}

// RingOn is Ring with an explicit CPU to charge the doorbell to.
func (c *Conn) RingOn(p *sim.Proc, cpu *sim.Resource) (int, error) {
	if c.closed {
		return 0, fmt.Errorf("core: doorbell on closed connection to node %d: %w", c.remoteNode, ErrClosed)
	}
	n := len(c.sq)
	if n == 0 {
		return 0, nil
	}
	batch := c.sq
	// Hand the previous ring's batch backing to the SQ for the next
	// Post run; descriptors posted while this ring's Exec blocks land
	// there, untouched by the walk below.
	c.sq = c.sqScratch
	c.sqScratch = nil
	ep := c.ep
	ep.noteSQDepth(-n)
	// Snapshot write payloads at ring time (the doorbell is the issue
	// point), before the batched cost is charged — mirroring DoOn's
	// snapshot-before-Exec order. The snapshot-pointer slices are conn
	// scratch (reused ring to ring); small payloads snapshot into pooled
	// buffers whose ownership transfers to the issued txOps.
	data, bufs := c.ringData[:0], c.ringBufs[:0]
	c.ringData, c.ringBufs = nil, nil
	copyBytes := 0
	for _, op := range batch {
		var d []byte
		var b *frame.Buf
		if op.Kind == frame.OpWrite {
			if op.Size > 0 && op.Size <= frame.BufCap {
				b = frame.GetBuf()
				d = append(b.Bytes()[:0], ep.mem[op.Local:op.Local+uint64(op.Size)]...)
			} else {
				d = append([]byte(nil), ep.mem[op.Local:op.Local+uint64(op.Size)]...)
			}
			if !ep.cfg.Offload {
				copyBytes += op.Size
			}
		}
		data, bufs = append(data, d), append(bufs, b)
	}
	cost := ep.costs.BatchIssue(n, copyBytes)
	if cpu == ep.cpus.App {
		ep.Stats.AppProtoTime += cost
	}
	p.Exec(cpu, cost)
	ep.Stats.Doorbells++
	ep.Stats.SQOps += uint64(n)
	if ep.doorbellHist != nil {
		ep.doorbellHist.Observe(float64(n))
	}
	ep.recEvent(c.localID, obs.RecDoorbell, int64(n), 0)
	// Walk the batch in issue order, coalescing runs of small writes
	// into shared MultiData frames.
	lim := ep.cfg.CoalesceLimit
	for i := 0; i < n; {
		if lim > 0 && coalescable(batch[i], lim) {
			j, bytes := i, multiPayloadBase
			// Under QoS a MultiData container carries ONE class's quota
			// charge, so a run breaks where the effective class changes.
			for j < n && coalescable(batch[j], lim) &&
				bytes+frame.SubOpOverhead+batch[j].Size <= frame.MaxPayload &&
				(!ep.qosOn() || c.opClass(batch[j]) == c.opClass(batch[i])) {
				bytes += frame.SubOpOverhead + batch[j].Size
				j++
			}
			if j > i+1 {
				c.enqueueMulti(batch[i:j], data[i:j])
				// The coalesced payload copied the snapshots; their pooled
				// backings are free again.
				for k := i; k < j; k++ {
					if bufs[k] != nil {
						frame.PutBuf(bufs[k])
						bufs[k] = nil
					}
				}
				i = j
				continue
			}
		}
		c.enqueueOp(batch[i], data[i], bufs[i], true)
		bufs[i] = nil
		i++
	}
	// Recycle the walk's scratch: the batch backing feeds the next ring's
	// Post run, the snapshot-pointer slices the next ring's walk.
	c.sqScratch = batch[:0]
	c.ringData, c.ringBufs = data[:0], bufs[:0]
	return n, nil
}

// MustRingOn is RingOn with the MustRing panic-on-error contract.
func (c *Conn) MustRingOn(p *sim.Proc, cpu *sim.Resource) int {
	n, err := c.RingOn(p, cpu)
	if err != nil {
		panic(err)
	}
	return n
}

// multiPayloadBase is the fixed MultiData payload overhead (the sub-op
// count field).
const multiPayloadBase = 2

// coalescable reports whether op may share a MultiData frame: a write no
// larger than the coalesce limit. Flags pose no obstacle — the receive
// side honors fences, Notify and Solicit per sub-op. Deadline ops stay
// un-coalesced so their expiry timers track exactly one operation.
func coalescable(op Op, limit int) bool {
	return op.Kind == frame.OpWrite && op.Size <= limit && op.Deadline == 0
}

// enqueueMulti packs a run of small writes into one MultiData txOp. Each
// sub-op keeps its own operation id (allocated contiguously in issue
// order); the container reuses the LAST sub-op's id, so sender-side
// forward-fence ordering (txFenced is sorted by id) holds any later
// operation until the whole batch — and therefore every fenced sub-op in
// it — is acknowledged.
func (c *Conn) enqueueMulti(ops []Op, data [][]byte) {
	ep := c.ep
	// subs is encode-input scratch (reused across rings); recs is owned
	// by the txOp and allocated per batch — one allocation amortized
	// over the whole coalesce run.
	subs := c.subScratch[:0]
	recs := make([]multiSub, len(ops))
	fenced := false
	for i, op := range ops {
		id := c.nextOpID
		c.nextOpID++
		subs = append(subs, frame.SubOp{OpID: id, Flags: op.Flags, Remote: op.Remote, Data: data[i]})
		recs[i] = multiSub{id: id, op: op}
		if op.Flags&frame.FenceAfter != 0 {
			fenced = true
		}
		if ep.obs.SpansEnabled() {
			name := "write-coalesced"
			if op.Flags&frame.Notify != 0 {
				name = "write-notify-coalesced"
			}
			recs[i].span = ep.obs.StartOpSpan(
				obs.SpanID{Node: ep.node, Conn: c.localID, Op: id}, "core", name, op.Size)
		}
		ep.Stats.OpsStarted++
	}
	pb := frame.GetBuf()
	payload, err := frame.EncodeMultiPayloadInto(pb.Bytes(), subs)
	if err != nil {
		panic(err) // Ring's packer keeps the batch under MaxPayload
	}
	c.subScratch = subs[:0]
	t := &txOp{
		id: recs[len(recs)-1].id, opType: frame.OpWrite,
		data: payload, dataBuf: pb, total: uint32(len(payload)), subs: recs,
	}
	if ep.qosOn() {
		// One container, one class (Ring breaks coalesce runs on class
		// boundaries): the batch's Post-time charges ride it together.
		t.qosCls, t.qosOps = c.opClass(ops[0]), len(ops)
		for _, op := range ops {
			t.qosBytes += op.Size
		}
	}
	if fenced {
		// One frame carries every sub-op, so one txFenced entry (the
		// container id) covers all fenced sub-ops in the batch.
		t.flags |= frame.FenceAfter
		c.txFenced = append(c.txFenced, t.id)
	}
	ep.Stats.CoalescedFrames++
	ep.Stats.CoalescedSubOps += uint64(len(ops))
	if ep.coalesceHist != nil {
		ep.coalesceHist.Observe(float64(len(ops)))
	}
	c.txOps = append(c.txOps, t)
	c.kick()
}

// SQLen returns the number of descriptors posted but not yet rung.
func (c *Conn) SQLen() int { return len(c.sq) }

// CQLen returns the number of completions waiting to be polled.
func (c *Conn) CQLen() int { return c.cq.Len() }

// PollCQ returns the oldest pending completion without blocking. Polling
// is free: the protocol thread deposits completion records into the
// user-visible queue as part of acknowledgement processing, and reading
// them needs no kernel crossing.
func (c *Conn) PollCQ() (Completion, bool) {
	comp, ok := c.cq.TryRecv()
	if ok {
		c.ep.noteCQDepth(-1)
	}
	return comp, ok
}

// WaitCQ blocks the process until a completion is available and returns
// it. A blocked waiter is woken by the protocol CPU at UserWake cost,
// like a handle Wait.
func (c *Conn) WaitCQ(p *sim.Proc) Completion {
	comp := c.cq.Recv(p)
	c.ep.noteCQDepth(-1)
	return comp
}

// pushCompletion deposits one completion record. The CPU cost of the
// store is part of the acknowledgement processing already charged; a
// wakeup is paid only if a process is blocked in WaitCQ (mirrors handle
// and notification delivery), and ONE wake covers every record
// deposited while it is in flight — a cumulative acknowledgement that
// completes a whole batch wakes the waiter once, and the waiter reads
// the rest of the queue without further kernel involvement.
func (c *Conn) pushCompletion(comp Completion) {
	ep := c.ep
	ep.noteCQDepth(1)
	if !c.cq.HasWaiters() && !c.cqFlush {
		c.cq.Send(ep.env, comp)
		return
	}
	c.cqStage = append(c.cqStage, comp)
	if c.cqFlush {
		return
	}
	c.cqFlush = true
	ep.cpus.Proto.Submit(ep.env, ep.costs.UserWake, c.cqFlushFn)
}
