package core

import (
	"fmt"
	"strconv"

	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// Multi-tenant quality of service (Config.QoS). The endpoint's FIFO
// scheduler (Config.SchedQueue) is extended with one control and one
// data service queue PER CLASS, and the protocol thread picks the next
// connection by deficit-weighted fair queueing instead of flat
// round-robin: each visit grants a class Weight × qosQuantum bytes of
// deficit, every transmitted frame is charged against it, and the
// cursor only advances once the deficit is spent — so when every class
// is backlogged, class i holds Weight_i/ΣWeight of the transmit slots
// regardless of how many connections (or how large the operations) a
// tenant throws at the endpoint.
//
// Two admission-side mechanisms bound what a tenant can occupy before
// scheduling even starts. A token bucket (RateBps/Burst) paces the
// class's data-path transmissions — control frames are never throttled;
// an empty bucket parks the class and a refill timer wakes the thread
// when the next frame's worth of tokens has accrued. Submission quotas
// (MaxQueued/MaxQueuedBytes) cap the class's admitted-but-uncompleted
// operations and payload bytes — the kernel-buffer/journal memory it
// pins — with explicit backpressure: fail-fast submissions (Post)
// return ErrThrottled, blocking submissions (Do) wait for room honoring
// Op.Deadline.

// qosQuantum is the deficit granted per unit of class weight per
// scheduler visit, sized to one full-MTU frame so a weight-1 class gets
// at least one large frame per round.
const qosQuantum = 1500

// qosMinCharge floors the deficit charge per transmit slot so runs of
// tiny (or evaporated) frames cannot hold the cursor forever.
const qosMinCharge = 64

// qosAdmitPoll is the blocking-admission polling interval: a Do caller
// over quota re-checks for room at this cadence (the same deterministic
// sleep-poll pattern Conn.Close uses to drain).
const qosAdmitPoll = 20 * sim.Microsecond

// qosNICQueueBound is the wire-pacing depth: while every NIC already
// has this many frames queued for transmit, the scheduler holds further
// data frames in the class queues. An unbounded NIC FIFO would decide
// service order itself — first-come, first-serialized — and the class
// weights would only ever shape the order frames *enter* it.
const qosNICQueueBound = 2

// qosClass is the endpoint's live state for one traffic class.
type qosClass struct {
	ctrlQ connFIFO // conns with pending explicit ACK/NACK work
	sendQ connFIFO // conns with transmittable data work

	deficit    int64 // DWFQ byte deficit (data path)
	ctrlBudget int   // weighted-round-robin ctrl frames left this visit

	// Token bucket (cfg.RateBps > 0). tokens may go negative: a frame
	// is admitted whenever tokens > 0 and charged its full size, so an
	// oversized frame simply delays the class longer.
	tokens      int64
	burst       int64
	lastRefill  sim.Time
	refillArmed bool

	// Submission quotas: admitted (issued or posted) but uncompleted.
	pendingOps   int
	pendingBytes int

	// Per-class counters, published by the qos collector at gather time.
	admitted   uint64
	throttled  uint64
	waits      uint64
	deferrals  uint64
	framesSent uint64
	bytesSent  uint64
}

// qosOn reports whether the QoS layer is active at this endpoint.
func (ep *Endpoint) qosOn() bool { return len(ep.qos) > 0 }

// initQoS builds the per-class scheduler state from Config.QoS.
func (ep *Endpoint) initQoS() {
	ep.qos = make([]qosClass, len(ep.cfg.QoS))
	for i := range ep.cfg.QoS {
		cc := &ep.cfg.QoS[i]
		q := &ep.qos[i]
		if cc.RateBps > 0 {
			q.burst = int64(cc.Burst)
			if q.burst <= 0 {
				q.burst = 64 << 10
			}
			q.tokens = q.burst // buckets start full
		}
	}
}

// classIdx is the conn's effective class, clamped into the configured
// table (a conn tagged before the endpoint's table shrank falls back to
// the default class instead of indexing out of bounds).
func (c *Conn) classIdx() int {
	if c.class < 0 || c.class >= len(c.ep.qos) {
		return 0
	}
	return c.class
}

// opClass is the effective class of one operation: the op's own tag
// when set, else the connection's.
func (c *Conn) opClass(op Op) int {
	if op.Class > 0 && op.Class < len(c.ep.qos) {
		return op.Class
	}
	return c.classIdx()
}

// SetClass tags the connection with a traffic class for QoS scheduling
// and admission (0 is the default class). Tag a connection right after
// Dial/Accept, before issuing traffic: the class of already-queued work
// is not migrated. With QoS off the tag is stored but has no effect.
// Panics on a negative or (with QoS on) out-of-range class, mirroring
// the loud validation of cluster.Config.Validate.
func (c *Conn) SetClass(cls int) {
	if cls < 0 || (c.ep.qosOn() && cls >= len(c.ep.qos)) {
		panic("core: SetClass: class index out of configured QoS range")
	}
	c.class = cls
}

// Class returns the connection's traffic class tag.
func (c *Conn) Class() int { return c.class }

// ---------------------------------------------------------------------
// Submission quotas (admission control).
// ---------------------------------------------------------------------

// qosHasRoom reports whether class cls can admit one more operation of
// size bytes. An empty class always admits, so a single operation
// larger than MaxQueuedBytes is not wedged forever — the byte quota is
// soft by at most one operation.
func (ep *Endpoint) qosHasRoom(cls, size int) bool {
	q := &ep.qos[cls]
	cfg := &ep.cfg.QoS[cls]
	if q.pendingOps == 0 {
		return true
	}
	if cfg.MaxQueued > 0 && q.pendingOps >= cfg.MaxQueued {
		return false
	}
	if cfg.MaxQueuedBytes > 0 && q.pendingBytes+size > cfg.MaxQueuedBytes {
		return false
	}
	return true
}

// qosCharge admits one operation into class cls's quota.
func (ep *Endpoint) qosCharge(cls, size int) {
	q := &ep.qos[cls]
	q.pendingOps++
	q.pendingBytes += size
	q.admitted++
	ep.Stats.QosOpsAdmitted++
}

// qosUncharge releases quota held by an admitted operation (completion,
// failure, or a posted descriptor dying unrung). Clamped at zero so an
// accounting mismatch can never wedge admission shut.
func (ep *Endpoint) qosUncharge(cls, n, size int) {
	q := &ep.qos[cls]
	q.pendingOps -= n
	q.pendingBytes -= size
	if q.pendingOps < 0 {
		q.pendingOps = 0
	}
	if q.pendingBytes < 0 {
		q.pendingBytes = 0
	}
}

// qosRelease returns a txOp's admission charge to its class. Exactly
// once per txOp: both completion paths (checkTxOpDone, failTxOp) flip
// completed first and the charge is zeroed here.
func (c *Conn) qosRelease(t *txOp) {
	if t.qosOps == 0 {
		return
	}
	c.ep.qosUncharge(t.qosCls, t.qosOps, t.qosBytes)
	t.qosOps = 0
	t.qosBytes = 0
}

// qosAdmitFast is the fail-fast admission check (Post): over quota
// returns ErrThrottled immediately, otherwise the charge is taken.
func (c *Conn) qosAdmitFast(op Op) (int, bool) {
	ep := c.ep
	cls := c.opClass(op)
	if !ep.qosHasRoom(cls, op.Size) {
		ep.qos[cls].throttled++
		ep.Stats.QosOpsThrottled++
		ep.recEvent(c.localID, obs.RecThrottled, int64(cls), 0)
		return cls, false
	}
	ep.qosCharge(cls, op.Size)
	return cls, true
}

// qosAdmitDo is the blocking admission path (Do/DoOn): the caller
// sleeps in a deterministic poll loop until its class has room, the
// connection dies, or Op.Deadline passes — overload backpressure
// instead of unbounded queueing.
func (c *Conn) qosAdmitDo(p *sim.Proc, op Op) (int, error) {
	ep := c.ep
	cls := c.opClass(op)
	if ep.qosHasRoom(cls, op.Size) {
		ep.qosCharge(cls, op.Size)
		return cls, nil
	}
	ep.qos[cls].waits++
	ep.Stats.QosAdmissionWaits++
	ep.recEvent(c.localID, obs.RecThrottled, int64(cls), 1)
	for {
		p.Sleep(qosAdmitPoll)
		if c.failed {
			return cls, fmt.Errorf("core: operation on failed connection to node %d: %w", c.remoteNode, c.failErr)
		}
		if c.closed {
			return cls, fmt.Errorf("core: operation on closed connection to node %d: %w", c.remoteNode, ErrClosed)
		}
		if op.Deadline > 0 && ep.env.Now() >= op.Deadline {
			// The operation never started (no OpsStarted/OpsFailed): only
			// the deadline-release counter ticks, like any expired waiter.
			ep.Stats.OpDeadlinesExpired++
			return cls, fmt.Errorf("core: class %d admission to node %d: %w", cls, c.remoteNode, ErrDeadlineExceeded)
		}
		if ep.qosHasRoom(cls, op.Size) {
			ep.qosCharge(cls, op.Size)
			return cls, nil
		}
	}
}

// ---------------------------------------------------------------------
// Token buckets (rate limits).
// ---------------------------------------------------------------------

// qosRefill lazily credits class cls's bucket for the time elapsed
// since the last refill. lastRefill only advances by the time whole
// tokens account for, so truncation never leaks rate; a full bucket
// resets the anchor so idle time cannot bank extra burst.
func (ep *Endpoint) qosRefill(cls int) {
	q := &ep.qos[cls]
	rate := ep.cfg.QoS[cls].RateBps
	if rate <= 0 {
		return
	}
	now := ep.env.Now()
	delta := int64(now - q.lastRefill)
	if delta <= 0 {
		return
	}
	if delta > int64(sim.Second) {
		delta = int64(sim.Second) // bucket is capped anyway; avoid overflow
		q.lastRefill = now - sim.Second
	}
	add := delta * rate / int64(sim.Second)
	q.tokens += add
	if q.tokens >= q.burst {
		q.tokens = q.burst
		q.lastRefill = now
		return
	}
	q.lastRefill += sim.Time(add * int64(sim.Second) / rate)
}

// qosRateOK reports whether class cls may transmit a data frame now,
// arming a thread wakeup for when the bucket next goes positive if not.
// The refill timer is a plain (non-daemon) event: a rate-parked class
// still has work, so the simulation must not drain under it.
func (ep *Endpoint) qosRateOK(cls int) bool {
	q := &ep.qos[cls]
	rate := ep.cfg.QoS[cls].RateBps
	if rate <= 0 {
		return true
	}
	ep.qosRefill(cls)
	if q.tokens > 0 {
		return true
	}
	q.deferrals++
	ep.Stats.QosRateDeferrals++
	if !q.refillArmed {
		q.refillArmed = true
		need := 1 - q.tokens
		d := sim.Time((need*int64(sim.Second) + rate - 1) / rate)
		ep.recEvent(0, obs.RecRateDefer, int64(cls), int64(d))
		ep.env.After(d, func() {
			q.refillArmed = false
			ep.wakeThread()
		})
	}
	return false
}

// ---------------------------------------------------------------------
// Scheduler (DWFQ pops).
// ---------------------------------------------------------------------

// qosKickConn enqueues c on its class queues, mirroring the flat
// SchedQueue bookkeeping (once per queue, lazily re-validated on pop).
func (ep *Endpoint) qosKickConn(c *Conn) {
	cls := c.classIdx()
	q := &ep.qos[cls]
	if !c.inCtrlQ && c.ctrlPending() {
		c.inCtrlQ = true
		q.ctrlQ.push(c)
		ep.recEvent(c.localID, obs.RecSched, 0, int64(q.ctrlQ.size()))
	}
	if !c.inSendQ && c.sendable() {
		c.inSendQ = true
		q.sendQ.push(c)
		ep.recEvent(c.localID, obs.RecSched, 1, int64(q.sendQ.size()))
	}
}

// qosPopCtrl picks the next connection with pending control work under
// weighted round-robin across classes: each visit lets a class send up
// to Weight control frames before the cursor moves on. Control frames
// are fixed-size, so frame-denominated deficits are exact, and no token
// bucket applies — acknowledgements repair the window that unblocks
// everyone else.
func (ep *Endpoint) qosPopCtrl() *Conn {
	n := len(ep.qos)
	for visited := 0; visited < n; visited++ {
		q := &ep.qos[ep.qosCtrlCur]
		if q.ctrlQ.empty() {
			q.ctrlBudget = 0
			ep.qosCtrlCur = (ep.qosCtrlCur + 1) % n
			continue
		}
		if q.ctrlBudget <= 0 {
			q.ctrlBudget = ep.cfg.QoS[ep.qosCtrlCur].Weight
		}
		for q.ctrlBudget > 0 {
			c := q.ctrlQ.pop()
			if c == nil {
				break
			}
			c.inCtrlQ = false
			if c.ctrlPending() {
				q.ctrlBudget--
				if q.ctrlBudget == 0 {
					ep.qosCtrlCur = (ep.qosCtrlCur + 1) % n
				}
				return c
			}
		}
		q.ctrlBudget = 0
		ep.qosCtrlCur = (ep.qosCtrlCur + 1) % n
	}
	return nil
}

// qosPopSend picks the next connection with transmittable data work by
// deficit-weighted fair queueing: the cursor parks on a class while it
// has deficit and work, empty or rate-parked classes are skipped (their
// deficit resets so idle classes cannot bank service), and each visit
// of a backlogged class grants Weight × qosQuantum fresh deficit. The
// class actually served is recorded in qosServing for the post-send
// charge.
func (ep *Endpoint) qosPopSend() *Conn {
	n := len(ep.qos)
	for visited := 0; visited < n; visited++ {
		cls := ep.qosSendCur
		q := &ep.qos[cls]
		if q.sendQ.empty() {
			q.deficit = 0
			ep.qosSendCur = (ep.qosSendCur + 1) % n
			continue
		}
		if !ep.qosRateOK(cls) {
			q.deficit = 0
			ep.qosSendCur = (ep.qosSendCur + 1) % n
			continue
		}
		if q.deficit <= 0 {
			q.deficit += int64(ep.cfg.QoS[cls].Weight) * qosQuantum
		}
		for {
			c := q.sendQ.pop()
			if c == nil {
				break
			}
			c.inSendQ = false
			if c.sendable() {
				ep.qosServing = cls
				return c
			}
		}
		q.deficit = 0
		ep.qosSendCur = (ep.qosSendCur + 1) % n
	}
	return nil
}

// qosChargeSend debits the served class for one transmitted data frame:
// n payload bytes against the deficit (floored at qosMinCharge so tiny
// frames still consume service) and against the token bucket. A spent
// deficit advances the cursor — the class's turn is over.
func (ep *Endpoint) qosChargeSend(cls, n int) {
	q := &ep.qos[cls]
	q.framesSent++
	q.bytesSent += uint64(n)
	ep.Stats.QosSchedFrames++
	charge := int64(n)
	if charge < qosMinCharge {
		charge = qosMinCharge
	}
	q.deficit -= charge
	if ep.cfg.QoS[cls].RateBps > 0 {
		q.tokens -= int64(n)
	}
	if q.deficit <= 0 && ep.qosSendCur == cls {
		ep.qosSendCur = (ep.qosSendCur + 1) % len(ep.qos)
	}
}

// qosSendWork reports whether any class has a connection queued for
// data-path service.
func (ep *Endpoint) qosSendWork() bool {
	for i := range ep.qos {
		if !ep.qos[i].sendQ.empty() {
			return true
		}
	}
	return false
}

// qosNICBusy reports whether every NIC's transmit queue is at or past
// the pacing bound, meaning a dispatched frame would sit behind wire
// backlog the scheduler no longer controls.
func (ep *Endpoint) qosNICBusy() bool {
	for _, n := range ep.nics {
		if n.OutPort().Queued() < qosNICQueueBound {
			return false
		}
	}
	return true
}

// qosArmPace schedules a wake for roughly when the head frame of the
// shallowest NIC queue clears the wire, re-entering threadStep to
// dispatch the next DWFQ pick. The timer is non-daemon — paced frames
// are real pending work and must keep the simulation alive — and
// deduplicated so at most one is outstanding per endpoint.
func (ep *Endpoint) qosArmPace() {
	if ep.qosPaceArmed {
		return
	}
	ep.qosPaceArmed = true
	var d sim.Time
	for _, n := range ep.nics {
		q := n.OutPort().Queued()
		if q == 0 {
			continue
		}
		per := n.OutPort().Backlog() / sim.Time(q)
		if d == 0 || per < d {
			d = per
		}
	}
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	ep.env.After(d, func() {
		ep.qosPaceArmed = false
		ep.wakeThread()
	})
}

// qosSchedDepth is the total number of queued scheduler entries across
// all class queues (the QoS counterpart of ctrlQ.size()+sendQ.size()).
func (ep *Endpoint) qosSchedDepth() int {
	d := 0
	for i := range ep.qos {
		d += ep.qos[i].ctrlQ.size() + ep.qos[i].sendQ.size()
	}
	return d
}

// qosCollector publishes the per-class qos_* series at gather time with
// a tenant label: admission gauges (pending work, bucket level) and the
// throttle/deferral/service counters.
func (ep *Endpoint) qosCollector() obs.Collector {
	nl := obs.NodeLabel(ep.node)
	tenants := make([]obs.Label, len(ep.qos))
	for i := range tenants {
		tenants[i] = obs.Label{Key: "tenant", Value: strconv.Itoa(i)}
	}
	return func(emit func(obs.Sample)) {
		for i := range ep.qos {
			q := &ep.qos[i]
			ls := []obs.Label{nl, tenants[i]}
			g := func(name string, v float64) {
				emit(obs.Sample{Name: name, Labels: ls, Value: v, Type: obs.TypeGauge})
			}
			c := func(name string, v uint64) {
				emit(obs.Sample{Name: name, Labels: ls, Value: float64(v), Type: obs.TypeCounter})
			}
			g("qos_pending_ops", float64(q.pendingOps))
			g("qos_pending_bytes", float64(q.pendingBytes))
			if ep.cfg.QoS[i].RateBps > 0 {
				g("qos_tokens", float64(q.tokens))
			}
			c("qos_admitted_total", q.admitted)
			c("qos_throttled_total", q.throttled)
			c("qos_admission_waits_total", q.waits)
			c("qos_rate_deferrals_total", q.deferrals)
			c("qos_frames_sent_total", q.framesSent)
			c("qos_bytes_sent_total", q.bytesSent)
		}
	}
}
