package core

import (
	"testing"

	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/sim"
)

// TestSeqRingBasics pins the map-equivalent semantics of the seqRing:
// get/put/del/size round-trips, overwrite, and the overflow spill path
// for live spans wider than the ring.
func TestSeqRingBasics(t *testing.T) {
	r := newSeqRing[int](128)
	if r.size() != 0 {
		t.Fatalf("fresh ring size %d", r.size())
	}
	r.put(5, 50)
	r.put(6, 60)
	r.put(5, 55) // overwrite
	if v, ok := r.get(5); !ok || v != 55 {
		t.Fatalf("get(5) = %v,%v", v, ok)
	}
	if r.size() != 2 {
		t.Fatalf("size %d, want 2", r.size())
	}
	r.del(5)
	if r.has(5) || r.size() != 1 {
		t.Fatalf("del(5) left has=%v size=%d", r.has(5), r.size())
	}
	r.del(5) // idempotent
	// Wrap-around keys behave like any other.
	r.put(0xFFFFFFFF, 1)
	r.put(0, 2)
	if !r.has(0xFFFFFFFF) || !r.has(0) {
		t.Fatal("wrap-adjacent keys lost")
	}
	r.clear()
	if r.size() != 0 || r.has(6) {
		t.Fatalf("clear left size=%d", r.size())
	}

	// Collision: two live keys one ring-size apart. The newer must win
	// the slot, the older must survive in overflow — never be dropped.
	n := uint32(len(r.slots))
	r.put(10, 100)
	r.put(10+n, 200)
	if v, ok := r.get(10); !ok || v != 100 {
		t.Fatalf("older colliding key lost: %v,%v", v, ok)
	}
	if v, ok := r.get(10 + n); !ok || v != 200 {
		t.Fatalf("newer colliding key lost: %v,%v", v, ok)
	}
	if r.overflowLen() != 1 || r.size() != 2 {
		t.Fatalf("overflow=%d size=%d", r.overflowLen(), r.size())
	}
	// Older key arriving second spills itself.
	r.put(20+n, 1)
	r.put(20, 2)
	if v, ok := r.get(20); !ok || v != 2 {
		t.Fatalf("older-second key lost: %v,%v", v, ok)
	}
	r.del(10)
	r.del(10 + n)
	if r.has(10) || r.has(10+n) {
		t.Fatal("colliding keys survived del")
	}
}

// arqEndpoint builds a minimal endpoint+conn pair for direct receive-path
// unit tests: frames are injected straight into handleData without a
// physical network, so a million-frame run stays fast.
func arqEndpoint(t *testing.T) (*Endpoint, *Conn) {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 16
	ep := NewEndpoint(env, 0, cfg, hostmodel.Default(), hostmodel.NewCPUs("n0"), nil)
	c := newConn(ep, 1, 1, 1)
	return ep, c
}

// TestRcvSeenBounded is the bounded-growth regression for the receive
// dedupe set: one million data frames through a lossy, reordering
// arrival pattern must never grow rcvSeen beyond the window-sized ring,
// and nothing may spill to the overflow map. Before the seqRing the
// map was pruned only as rcvNxt advanced, which kept it bounded in the
// steady state but churned a map insert+delete per frame; the ring
// makes the bound structural.
func TestRcvSeenBounded(t *testing.T) {
	_, c := arqEndpoint(t)
	const total = 1_000_000
	const lossEvery = 97 // drop every 97th first transmission...
	const repairLag = 40 // ...and deliver it this many frames later
	ringCap := len(c.rcvSeen.slots)

	deliver := func(seq uint32) {
		h := frame.Header{
			Type: frame.TypeData, ConnID: 1, Seq: seq,
			OpID: uint64(seq), OpType: frame.OpWrite, Total: 0,
		}
		c.handleData(h, nil, 0)
	}

	var pending []uint32 // lost frames awaiting their late delivery
	maxSize := 0
	for i := 0; i < total; i++ {
		seq := uint32(i)
		if i%lossEvery == 13 {
			pending = append(pending, seq)
		} else {
			deliver(seq)
		}
		if len(pending) > 0 && seq-pending[0] >= repairLag {
			deliver(pending[0])
			pending = pending[1:]
		}
		if i%4096 == 0 {
			if n, ov := c.RcvSeenSizeForTest(); n > maxSize {
				maxSize = n
				if ov != 0 {
					t.Fatalf("frame %d: rcvSeen spilled %d entries to overflow", i, ov)
				}
			}
		}
	}
	for _, s := range pending {
		deliver(s)
	}
	if maxSize > ringCap {
		t.Fatalf("rcvSeen grew to %d entries, ring holds %d", maxSize, ringCap)
	}
	if n, ov := c.RcvSeenSizeForTest(); n != 0 || ov != 0 {
		t.Fatalf("after full delivery rcvSeen retains %d entries (%d overflow)", n, ov)
	}
	if c.rcvNxt != total {
		t.Fatalf("rcvNxt = %d, want %d", c.rcvNxt, total)
	}
}

// TestStopTimersDropsGapState pins the stopTimers contract satellite:
// dropping the in-flight repair timestamps (missingSince/nackedAt)
// wholesale on teardown is intentional — stopTimers runs only on exits
// from the live state, where the old sequence space is dead — and the
// drop must be total, so no stale-seq timestamp can re-arm the NACK
// machinery after close, failure or rebirth.
func TestStopTimersDropsGapState(t *testing.T) {
	_, c := arqEndpoint(t)
	c.SeedGapForTest(7, 100)
	c.SeedGapForTest(9, 120)
	c.nackDue = []uint32{7, 9}
	c.ackDue = true
	if m, n := c.GapStateForTest(7); !m || !n {
		t.Fatal("seed did not take")
	}
	c.StopTimersForTest()
	for _, s := range []uint32{7, 9} {
		if m, n := c.GapStateForTest(s); m || n {
			t.Fatalf("seq %d gap state survived stopTimers (missing=%v nacked=%v)", s, m, n)
		}
	}
	if c.TrackedGapsForTest() != 0 {
		t.Fatalf("%d tracked gaps survived stopTimers", c.TrackedGapsForTest())
	}
	if ack, nacks := c.CtrlStateForTest(); ack || nacks != 0 {
		t.Fatalf("ctrl state survived stopTimers: ackDue=%v nacks=%d", ack, nacks)
	}
}
