package chaos

import (
	"encoding/json"
	"strings"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

// TestPostMortemOnForcedFailure is the flight-recorder acceptance test:
// a soak whose script kills the peer without ExpectDeath must trip the
// unexpected-death invariant, and the resulting post-mortem dump must
// interleave the injected fault with the victim connection's last
// recorded state transitions — the evidence a human needs to see what
// the protocol was doing when it died.
func TestPostMortemOnForcedFailure(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	cfg.Core.DeadInterval = 200 * sim.Millisecond
	cfg.Core.HeartbeatInterval = 20 * sim.Millisecond
	res, vs, art := RunDeep(Options{
		Config:    cfg,
		Seed:      1,
		Transfers: 1000,
		Bytes:     16 << 10,
		Horizon:   5 * sim.Second,
		// ExpectDeath deliberately false: the kill below is the injected
		// fault the dump must explain.
		Script: func(r *Runner) { r.KillAllRails(50*sim.Millisecond, 1) },
	})
	if !res.PeerDead {
		t.Fatalf("writer never observed ErrPeerDead (completed %d)", res.Completed)
	}
	if len(vs) == 0 {
		t.Fatal("no violation despite an unexpected peer death")
	}
	if art == nil || art.Dump == nil {
		t.Fatal("violating run produced no post-mortem dump")
	}
	if len(art.Recorders) != 2 {
		t.Fatalf("recorders attached = %d; want one per node", len(art.Recorders))
	}

	tl := art.Dump.Timeline()
	// The injected fault must be in the timeline...
	if !strings.Contains(tl, "FAULT  pause node n1") {
		t.Fatalf("timeline missing the injected fault:\n%s", tl)
	}
	// ...the cause tag must name the tripped invariant...
	if !strings.Contains(art.Dump.Cause, "unexpected-death") {
		t.Fatalf("dump cause %q does not name the invariant", art.Dump.Cause)
	}
	// ...and the victim connection's final state transitions must have
	// survived: establishment before the fault, the peer-death verdict
	// and terminal failure after it, with RTO expiries in between.
	for _, want := range []string{"established", "peer-dead", "failed", "rto-expiry"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing victim state %q:\n%s", want, tl)
		}
	}
	if strings.Index(tl, "FAULT") > strings.Index(tl, "peer-dead") {
		t.Fatalf("fault not interleaved before its effect:\n%s", tl)
	}

	if out := art.Dump.JSON(); !json.Valid(out) {
		t.Fatalf("dump JSON invalid:\n%s", out)
	}

	// Determinism: the identical run must dump the identical timeline.
	_, _, art2 := RunDeep(Options{
		Config: cfg, Seed: 1, Transfers: 1000, Bytes: 16 << 10,
		Horizon: 5 * sim.Second,
		Script:  func(r *Runner) { r.KillAllRails(50*sim.Millisecond, 1) },
	})
	if art2 == nil || art2.Dump == nil || art2.Dump.Timeline() != tl {
		t.Fatal("post-mortem dump not deterministic across identical runs")
	}
}

// TestCleanSoakHasNoDump: a healthy run keeps its recorders but builds
// no post-mortem — the dump is strictly a failure artifact.
func TestCleanSoakHasNoDump(t *testing.T) {
	res, vs, art := RunDeep(Options{
		Config:    cluster.OneLink1G(2),
		Seed:      1,
		Transfers: 5,
		Bytes:     4 << 10,
		Horizon:   5 * sim.Second,
	})
	if len(vs) != 0 {
		t.Fatalf("clean soak violated: %v", vs)
	}
	if res.Completed != 5 || !res.DataOK {
		t.Fatalf("clean soak incomplete: %+v", res)
	}
	if art.Dump != nil {
		t.Fatal("clean soak built a post-mortem dump")
	}
	if len(art.Recorders) != 2 || art.Recorders[0].Recorded() == 0 {
		t.Fatal("flight recorders absent or empty on a clean run")
	}
}
