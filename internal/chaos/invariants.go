package chaos

import (
	"fmt"

	"multiedge/internal/cluster"
)

// Violation is one broken invariant found during or after a chaos run.
type Violation struct {
	Name   string // short invariant identifier, e.g. "data-integrity"
	Detail string
}

func (v Violation) String() string { return v.Name + ": " + v.Detail }

// CheckReport verifies cross-counter consistency of an aggregated
// cluster report: relations that must hold for any run, faulty or not.
// Workload-level invariants (data integrity, exactly-once notification,
// no stuck operation) are checked by the soak driver, which knows what
// was sent.
func CheckReport(rep cluster.NetReport) []Violation {
	var vs []Violation
	add := func(name, format string, args ...interface{}) {
		vs = append(vs, Violation{Name: name, Detail: fmt.Sprintf(format, args...)})
	}
	p := rep.Proto
	if p.OpsCompleted > p.OpsStarted {
		add("stats", "OpsCompleted %d > OpsStarted %d", p.OpsCompleted, p.OpsStarted)
	}
	if p.OOOArrivals > p.Arrivals {
		add("stats", "OOOArrivals %d > Arrivals %d", p.OOOArrivals, p.Arrivals)
	}
	// Cluster-wide, no Reset can be received that was not sent: faults
	// lose frames, and a duplicated Reset lands on a connection the
	// first copy already closed, where it is dropped before counting.
	// (Heartbeats have no such bound — an injected duplicate of one is
	// indistinguishable from a fresh heartbeat and counts twice.)
	if p.ResetsRecv > p.ResetsSent {
		add("stats", "ResetsRecv %d > ResetsSent %d", p.ResetsRecv, p.ResetsSent)
	}
	// DataFramesRecv counts only ARQ-accepted frames, so under retransmit
	// storms dup drops can exceed accepts; but every dropped duplicate
	// entered through a NIC.
	if p.DupFramesDropped > rep.NICRxFrames {
		add("stats", "DupFramesDropped %d > NICRxFrames %d", p.DupFramesDropped, rep.NICRxFrames)
	}
	return vs
}
