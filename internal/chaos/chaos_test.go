package chaos

import (
	"os"
	"strconv"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/sim"
)

// seedBase returns the first seed of the test matrix; CI varies it via
// CHAOS_SEED_BASE so the pinned-seed jobs cover disjoint seed ranges.
func seedBase(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED_BASE"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED_BASE %q: %v", s, err)
		}
		return v
	}
	return 1
}

func topologies() map[string]cluster.Config {
	return map[string]cluster.Config{
		"1L-1G":  cluster.OneLink1G(2),
		"2Lu-1G": cluster.TwoLinkUnordered1G(2),
		"1L-10G": cluster.OneLink10G(2),
	}
}

// flapHeavy is the standard randomized soak scenario: flaps up to
// 500 ms plus loss/corrupt/reorder/duplication bursts, under a
// DeadInterval comfortably above the worst outage so nothing
// legitimately dies, with the adaptive RTO estimator enabled.
func flapHeavy(cfg cluster.Config, seed int64) Options {
	cfg.Core.DeadInterval = 5 * sim.Second
	cfg.Core.RTOMax = 100 * sim.Millisecond
	return Options{
		Config:    cfg,
		Seed:      seed,
		Transfers: 30,
		Bytes:     32 << 10,
		Gap:       100 * sim.Millisecond, // span the whole fault window
		Horizon:   60 * sim.Second,
		Script: func(r *Runner) {
			r.Randomize(RandomizeOptions{
				From:      sim.Millisecond,
				To:        3 * sim.Second,
				Events:    24,
				MaxOutage: 500 * sim.Millisecond,
			})
		},
	}
}

func TestSoakFlapHeavy(t *testing.T) {
	base := seedBase(t)
	seeds := int64(8)
	if testing.Short() {
		seeds = 2
	}
	for name, cfg := range topologies() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := base; seed < base+seeds; seed++ {
				res, vs := Run(flapHeavy(cfg, seed))
				for _, v := range vs {
					t.Errorf("seed %d: violation %s", seed, v)
				}
				if res.Completed != 30 || !res.DataOK {
					t.Errorf("seed %d: %d/30 transfers, dataOK=%v (failed ops %d, ended %v)",
						seed, res.Completed, res.DataOK, res.FailedOps, res.EndedAt)
				}
				if res.PeerDead || res.ReceiverDead {
					t.Errorf("seed %d: connection died under sub-DeadInterval faults", seed)
				}
			}
		})
	}
}

// crashRestartSoak is the recovery scenario: supervised reconnect on, a
// deterministic one-way ack-starvation window (guaranteeing the stale-
// incarnation fence fires every seed), then randomized whole-node
// crash-restart cycles, under a paced 30-transfer verified stream.
func crashRestartSoak(cfg cluster.Config, seed int64) Options {
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 50 * sim.Millisecond
	cfg.Core.HeartbeatInterval = 10 * sim.Millisecond
	cfg.Core.MaxReconnects = 20 // overlapping faults can burn several redials
	links := cfg.LinksPerNode
	return Options{
		Config:    cfg,
		Seed:      seed,
		Transfers: 30,
		Bytes:     32 << 10,
		Gap:       100 * sim.Millisecond,
		Horizon:   60 * sim.Second,
		Script: func(r *Runner) {
			// Acks die, data flows: the writer parks and redials while the
			// receiver keeps applying, is reborn by the first ConnReq, and
			// heartbeats into the writer's parked epoch once the direction
			// heals — deterministic StaleEpochDrops.
			for l := 0; l < links; l++ {
				r.SeverDirection(100*sim.Millisecond, 300*sim.Millisecond, 1, 0, l)
			}
			r.Randomize(RandomizeOptions{
				From:          500 * sim.Millisecond,
				To:            3 * sim.Second,
				Events:        8,
				MaxOutage:     30 * sim.Millisecond, // soft faults stay sub-DeadInterval
				CrashRestarts: 3,
				CrashDownMin:  100 * sim.Millisecond,
				CrashDownMax:  250 * sim.Millisecond,
			})
		},
	}
}

func TestSoakCrashRestart(t *testing.T) {
	// The acceptance soak: every transfer completes byte-verified across
	// crash-restarts, the exactly-once invariant (notifies == completed)
	// holds despite replays, and the epoch fence demonstrably fired.
	base := seedBase(t)
	seeds := int64(8)
	if testing.Short() {
		seeds = 2
	}
	for name, cfg := range map[string]cluster.Config{
		"1L-1G":  cluster.OneLink1G(2),
		"2Lu-1G": cluster.TwoLinkUnordered1G(2),
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := base; seed < base+seeds; seed++ {
				res, vs := Run(crashRestartSoak(cfg, seed))
				for _, v := range vs {
					t.Errorf("seed %d: violation %s", seed, v)
				}
				if res.Completed != 30 || !res.DataOK {
					t.Errorf("seed %d: %d/30 transfers, dataOK=%v (failed ops %d, ended %v)",
						seed, res.Completed, res.DataOK, res.FailedOps, res.EndedAt)
				}
				if res.PeerDead || res.ReceiverDead {
					t.Errorf("seed %d: connection died despite supervised reconnect", seed)
				}
				p := res.Report.Proto
				if p.Reconnects == 0 || p.ReplayedOps == 0 {
					t.Errorf("seed %d: Reconnects=%d ReplayedOps=%d — recovery path not exercised",
						seed, p.Reconnects, p.ReplayedOps)
				}
				if p.StaleEpochDrops == 0 {
					t.Errorf("seed %d: StaleEpochDrops=0 — epoch fence never fired", seed)
				}
				if p.ReconnectsFailed != 0 {
					t.Errorf("seed %d: %d reconnects exhausted their budget", seed, p.ReconnectsFailed)
				}
			}
		})
	}
}

func TestSoakKillAllRails(t *testing.T) {
	// Node 1 goes permanently dark mid-stream. The writer's pending op
	// must fail with ErrPeerDead within DeadInterval (plus one timer
	// period of detection slack), and the idle receiver must learn of
	// the death through heartbeat silence on its own side.
	const (
		kill = 50 * sim.Millisecond
		di   = 200 * sim.Millisecond
	)
	for name, cfg := range topologies() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.Core.DeadInterval = di
			cfg.Core.HeartbeatInterval = 20 * sim.Millisecond
			res, vs := Run(Options{
				Config:      cfg,
				Seed:        seedBase(t),
				Transfers:   1000, // far more than fit before the kill
				Bytes:       16 << 10,
				Horizon:     5 * sim.Second,
				ExpectDeath: true,
				Script:      func(r *Runner) { r.KillAllRails(kill, 1) },
			})
			for _, v := range vs {
				t.Errorf("violation %s", v)
			}
			if !res.PeerDead {
				t.Fatalf("writer never observed ErrPeerDead (completed %d, failed %d)",
					res.Completed, res.FailedOps)
			}
			if lim := kill + di + 50*sim.Millisecond; res.FailedAt > lim {
				t.Errorf("death surfaced at %v, want within %v", res.FailedAt, lim)
			}
			if !res.ReceiverDead {
				t.Error("receiver side never detected the death via heartbeats")
			}
			if res.Report.Proto.PeerDeadEvents == 0 || res.Report.LinkFailDrops == 0 {
				t.Errorf("PeerDeadEvents %d, LinkFailDrops %d: detection left no trace",
					res.Report.Proto.PeerDeadEvents, res.Report.LinkFailDrops)
			}
		})
	}
}

func TestSoakReproducible(t *testing.T) {
	// Identical seeds must yield identical NetReports: the chaos stream
	// is private to the Runner and the simulator is deterministic, so
	// two runs of the same Options are bit-identical.
	for _, seed := range []int64{seedBase(t), seedBase(t) + 1} {
		a, _ := Run(flapHeavy(cluster.TwoLinkUnordered1G(2), seed))
		b, _ := Run(flapHeavy(cluster.TwoLinkUnordered1G(2), seed))
		if a.Report != b.Report {
			t.Fatalf("seed %d: reports differ between identical runs:\n%+v\n%+v",
				seed, a.Report, b.Report)
		}
		if a != b {
			t.Fatalf("seed %d: results differ between identical runs:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestFloodReproducible(t *testing.T) {
	// A tenant flood is pure workload on the simulation clock: composed
	// with a link flap under QoS, identical seeds must still produce
	// bit-identical results. The flood (class 1, rate-capped and
	// quota-bounded) contends with the verified victim stream (class 0)
	// at node 0's endpoint, and the victim still completes.
	mk := func(seed int64) Options {
		cfg := cluster.OneLink1G(2)
		cfg.Core.DeadInterval = 5 * sim.Second
		cfg.Core.SchedQueue = true
		cfg.Core.QoS = []core.QoSClass{
			{Weight: 8},
			{Weight: 1, RateBps: 100e6, MaxQueued: 32, MaxQueuedBytes: 1 << 20},
		}
		return Options{
			Config:    cfg,
			Seed:      seed,
			Transfers: 20,
			Bytes:     8 << 10,
			Gap:       5 * sim.Millisecond,
			Horizon:   30 * sim.Second,
			Script: func(r *Runner) {
				r.Flood(sim.Millisecond, 200*sim.Millisecond, 0, 1, 1, 4, 16<<10)
				r.FlapLink(50*sim.Millisecond, 20*sim.Millisecond, 0, 0)
			},
		}
	}
	for _, seed := range []int64{seedBase(t), seedBase(t) + 1} {
		a, avs := Run(mk(seed))
		b, _ := Run(mk(seed))
		for _, v := range avs {
			t.Errorf("seed %d: violation %s", seed, v)
		}
		if a.Report != b.Report {
			t.Fatalf("seed %d: reports differ between identical flood runs:\n%+v\n%+v",
				seed, a.Report, b.Report)
		}
		if a != b {
			t.Fatalf("seed %d: results differ between identical flood runs:\n%+v\n%+v",
				seed, a, b)
		}
		if a.Completed != 20 || !a.DataOK {
			t.Errorf("seed %d: victim stream %d/20 complete, dataOK=%v under flood",
				seed, a.Completed, a.DataOK)
		}
		if a.Report.Proto.QosSchedFrames == 0 || a.Report.Proto.QosOpsAdmitted == 0 {
			t.Errorf("seed %d: flood left no QoS trace (sched frames %d, admitted %d)",
				seed, a.Report.Proto.QosSchedFrames, a.Report.Proto.QosOpsAdmitted)
		}
	}
}

func TestIncastReproducible(t *testing.T) {
	// An incast storm is pure workload on the simulation clock — the
	// synchronized senders draw nothing from the Runner's random
	// stream — so composed with a loss burst under congestion control,
	// identical seeds must still produce bit-identical results. Eight
	// senders converge on node 1 through a marking fabric while the
	// verified victim stream (node 0 → 1) shares the bottleneck.
	mk := func(seed int64) Options {
		cfg := cluster.OneLink1G(10)
		cfg.Core.DeadInterval = 5 * sim.Second
		cfg.Core.SchedQueue = true
		cfg.Core.CongestionControl = core.CCConfig{Enable: true}
		cfg.EcnThreshold = 16
		return Options{
			Config:    cfg,
			Seed:      seed,
			Transfers: 10,
			Bytes:     8 << 10,
			Gap:       10 * sim.Millisecond,
			Horizon:   30 * sim.Second,
			Script: func(r *Runner) {
				r.Incast(sim.Millisecond, 80*sim.Millisecond,
					[]int{2, 3, 4, 5, 6, 7, 8, 9}, 1, 0, 8<<10)
				r.LossBurst(20*sim.Millisecond, 25*sim.Millisecond, 1, 0, 0.05)
			},
		}
	}
	for _, seed := range []int64{seedBase(t), seedBase(t) + 1} {
		a, avs := Run(mk(seed))
		b, _ := Run(mk(seed))
		for _, v := range avs {
			t.Errorf("seed %d: violation %s", seed, v)
		}
		if a.Report != b.Report {
			t.Fatalf("seed %d: reports differ between identical incast runs:\n%+v\n%+v",
				seed, a.Report, b.Report)
		}
		if a != b {
			t.Fatalf("seed %d: results differ between identical incast runs:\n%+v\n%+v",
				seed, a, b)
		}
		if a.Completed != 10 || !a.DataOK {
			t.Errorf("seed %d: victim stream %d/10 complete, dataOK=%v under incast",
				seed, a.Completed, a.DataOK)
		}
		if a.Report.EcnMarks == 0 || a.Report.Proto.CcCwndCuts == 0 {
			t.Errorf("seed %d: incast left no congestion trace (marks %d, cuts %d)",
				seed, a.Report.EcnMarks, a.Report.Proto.CcCwndCuts)
		}
		if a.Report.Proto.PeerDeadEvents != 0 {
			t.Errorf("seed %d: %d spurious peer-death verdicts under congestion control",
				seed, a.Report.Proto.PeerDeadEvents)
		}
	}
}

func TestDuplicateEveryNth(t *testing.T) {
	// Regression for receive-side dedupe: duplicate every 3rd frame on
	// node 0's rail for the whole run. Every duplicate data frame must
	// be dropped without re-applying its payload, every transfer must
	// land intact, and the drops must be visible in DupFramesDropped.
	cfg := cluster.OneLink1G(2)
	res, vs := Run(Options{
		Config:    cfg,
		Seed:      seedBase(t),
		Transfers: 20,
		Bytes:     32 << 10,
		Horizon:   20 * sim.Second,
		Script: func(r *Runner) {
			r.DuplicateEveryNth(sim.Millisecond, 20*sim.Second, 0, 0, 3)
		},
	})
	for _, v := range vs {
		t.Errorf("violation %s", v)
	}
	if res.Completed != 20 || !res.DataOK {
		t.Fatalf("%d/20 transfers, dataOK=%v", res.Completed, res.DataOK)
	}
	if res.Report.Proto.DupFramesDropped == 0 {
		t.Error("no duplicate data frames counted despite duplicating every 3rd frame")
	}
}

func TestPartitionHeals(t *testing.T) {
	// A 300 ms partition between the two nodes under a 5 s DeadInterval:
	// traffic stalls, nobody dies, and the stream completes after the
	// cut heals.
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Core.DeadInterval = 5 * sim.Second
	res, vs := Run(Options{
		Config:    cfg,
		Seed:      seedBase(t),
		Transfers: 20,
		Bytes:     32 << 10,
		Gap:       25 * sim.Millisecond, // keep traffic flowing across the cut
		Horizon:   30 * sim.Second,
		Script: func(r *Runner) {
			r.Partition(10*sim.Millisecond, 310*sim.Millisecond, []int{0})
		},
	})
	for _, v := range vs {
		t.Errorf("violation %s", v)
	}
	if res.Completed != 20 || res.PeerDead {
		t.Fatalf("%d/20 transfers, peerDead=%v after partition healed", res.Completed, res.PeerDead)
	}
}

func TestSoakOpDeadlines(t *testing.T) {
	// Every op carries a deadline; under flaps some waits are released
	// early with ErrDeadlineExceeded but none may be released late, and
	// the un-cancelled transfers still count nothing twice.
	o := flapHeavy(cluster.OneLink1G(2), seedBase(t))
	o.Deadline = 100 * sim.Millisecond
	o.ExpectDeath = true // deadline expiries skew notify counts; skip that check
	res, vs := Run(o)
	for _, v := range vs {
		t.Errorf("violation %s", v)
	}
	if res.PeerDead || res.ReceiverDead {
		t.Error("connection died under sub-DeadInterval faults")
	}
	if res.Completed == 0 && res.Report.Proto.OpDeadlinesExpired == 0 {
		t.Error("nothing completed and nothing expired")
	}
}
