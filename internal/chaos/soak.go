package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// Options configures one chaos soak: a cluster, a fault timeline and a
// verifying workload (node 0 streams pseudo-random writes to node 1,
// each flagged for notification and verified byte-for-byte on arrival).
type Options struct {
	// Config is the base cluster; its Seed is overridden by Seed so one
	// topology fans out across a seed matrix.
	Config cluster.Config
	// Seed drives the cluster RNG, the fault timeline and the payload
	// pattern. Identical Options produce bit-identical runs.
	Seed int64
	// Transfers and Bytes shape the workload: Transfers sequential
	// writes of Bytes each, rotated over four destination slots.
	Transfers int
	Bytes     int
	// Gap paces the writer: a sleep between consecutive transfers so
	// the workload spans the fault window instead of finishing in the
	// few milliseconds of wire time before the first fault lands.
	Gap sim.Time
	// Script builds the fault timeline on the Runner before the
	// workload starts. Schedule faults at absolute times >= 1ms: the
	// connection handshake (which runs first) takes microseconds.
	Script func(r *Runner)
	// Horizon bounds the run in simulated time. A writer that has
	// neither finished nor failed by then is a stuck-op violation.
	Horizon sim.Time
	// Deadline, when non-zero, stamps every operation with an absolute
	// deadline now+Deadline; a Wait returning later than its deadline
	// is a violation.
	Deadline sim.Time
	// ExpectDeath marks scripts that legitimately kill the peer: the
	// workload may end early with ErrPeerDead and notification counts
	// are not required to match.
	ExpectDeath bool
}

// Result is what one soak run produced. All fields are comparable, so
// two Results from identical Options can be compared with == (minus
// Violations, which is a slice — compare after joining or check empty).
type Result struct {
	Completed    int  // transfers verified complete
	FailedOps    int  // operations that returned an error
	Notifies     int  // notifications delivered to the receiver
	DataOK       bool // every completed transfer arrived byte-identical
	PeerDead     bool // writer observed ErrPeerDead
	ReceiverDead bool // receiver-side connection reached Failed
	FailedAt     sim.Time
	EndedAt      sim.Time
	Report       cluster.NetReport
}

// Artifacts bundles the non-comparable products of one soak run —
// kept out of Result so Results stay ==-comparable across runs.
type Artifacts struct {
	Obs       *obs.Registry      // registry, nil unless Options.Config enabled one
	Recorders []*obs.Recorder    // per-node flight recorders (always attached)
	Faults    []obs.TimelineNote // the injected fault timeline
	Dump      *obs.PostMortem    // post-mortem, built only when invariants fired
}

// Run executes one soak: build the cluster, connect a pair, lay down
// the fault timeline, stream verified transfers, then collect the
// report and check invariants.
func Run(o Options) (Result, []Violation) {
	res, vs, _ := RunDeep(o)
	return res, vs
}

// RunDeep is Run, additionally returning the run's observability
// artifacts: the flight recorders (attached unconditionally — recording
// is pure observation and cannot perturb the run), the fault timeline,
// and, when any invariant fired, a cause-tagged post-mortem dump that
// interleaves the injected faults with the victim connections' last
// recorded events.
func RunDeep(o Options) (Result, []Violation, *Artifacts) {
	cfg := o.Config
	cfg.Seed = o.Seed
	cfg.Obs.Recorder = true
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	r := New(cl, o.Seed*1000003+7)
	if o.Script != nil {
		o.Script(r)
	}

	res := Result{DataOK: true}
	var vs []Violation
	violate := func(name, format string, args ...interface{}) {
		vs = append(vs, Violation{Name: name, Detail: fmt.Sprintf(format, args...)})
	}

	const slots = 4
	src := cl.Nodes[0].EP.Alloc(o.Bytes)
	dsts := make([]uint64, slots)
	for i := range dsts {
		dsts[i] = cl.Nodes[1].EP.Alloc(o.Bytes)
	}
	mem0 := cl.Nodes[0].EP.Mem()
	mem1 := cl.Nodes[1].EP.Mem()
	pat := rand.New(rand.NewSource(o.Seed ^ 0x5eed))

	var writerDone bool
	cl.Env.Go("chaos-writer", func(p *sim.Proc) {
		defer func() { writerDone = true }()
		for i := 0; i < o.Transfers; i++ {
			if o.Gap > 0 && i > 0 {
				p.Sleep(o.Gap)
			}
			buf := mem0[src : src+uint64(o.Bytes)]
			for j := range buf {
				buf[j] = byte(pat.Intn(256))
			}
			dst := dsts[i%slots]
			op := core.Op{Remote: dst, Local: src, Size: o.Bytes,
				Kind: frame.OpWrite, Flags: frame.Notify}
			if o.Deadline > 0 {
				op.Deadline = cl.Env.Now() + o.Deadline
			}
			h, err := c01.Do(p, op)
			if err != nil {
				res.FailedOps++
				if errors.Is(err, core.ErrPeerDead) {
					res.PeerDead = true
					res.FailedAt = cl.Env.Now()
				} else {
					violate("op-error", "transfer %d rejected: %v", i, err)
				}
				return
			}
			h.Wait(p)
			// The deadline timer releases the waiter, which then pays the
			// modeled scheduler wakeup latency before running again; allow
			// that much slack past the deadline, but no more.
			if o.Deadline > 0 && cl.Env.Now() > op.Deadline+50*sim.Microsecond {
				violate("op-past-deadline", "transfer %d released at %v, deadline %v",
					i, cl.Env.Now(), op.Deadline)
			}
			if err := h.Err(); err != nil {
				res.FailedOps++
				if errors.Is(err, core.ErrPeerDead) {
					res.PeerDead = true
					res.FailedAt = cl.Env.Now()
					return
				}
				if errors.Is(err, core.ErrDeadlineExceeded) {
					continue // waiter released; transfer may still land
				}
				violate("op-error", "transfer %d failed: %v", i, err)
				return
			}
			if !bytes.Equal(mem1[dst:dst+uint64(o.Bytes)], buf) {
				res.DataOK = false
				violate("data-integrity", "transfer %d corrupted at receiver", i)
			}
			res.Completed++
		}
	})
	cl.Env.Go("chaos-receiver", func(p *sim.Proc) {
		// Polling keeps the receiver from parking forever if the writer
		// dies before sending anything (WaitNotify unblocks on a failed
		// connection, but this side's conn only fails if it detects the
		// silence itself).
		for res.Notifies < o.Transfers && !c10.Failed() {
			if _, ok := c10.PollNotify(); ok {
				res.Notifies++
				continue
			}
			p.Sleep(200 * sim.Microsecond)
		}
	})

	res.EndedAt = cl.Env.RunUntil(o.Horizon)
	for {
		if _, ok := c10.PollNotify(); !ok {
			break
		}
		res.Notifies++
	}
	res.ReceiverDead = c10.Failed()

	if !writerDone {
		violate("stuck-op", "writer neither finished nor failed by horizon %v "+
			"(%d/%d transfers)", o.Horizon, res.Completed, o.Transfers)
	}
	if res.PeerDead && !o.ExpectDeath {
		violate("unexpected-death", "peer declared dead at %v: %v", res.FailedAt, c01.Err())
	}
	if !o.ExpectDeath && writerDone && res.FailedOps == 0 {
		// Exactly-once delivery: each completed notify-flagged write
		// must surface exactly one notification — none lost, none
		// applied twice.
		if res.Notifies != res.Completed {
			violate("notify-count", "%d notifications for %d completed transfers",
				res.Notifies, res.Completed)
		}
	}

	res.Report = cl.Collect()
	vs = append(vs, CheckReport(res.Report)...)

	art := &Artifacts{Obs: cl.Obs, Recorders: cl.Recorders}
	for _, ev := range r.Events {
		art.Faults = append(art.Faults, obs.TimelineNote{At: ev.At, Text: ev.What})
	}
	if len(vs) > 0 {
		art.Dump = obs.BuildPostMortem(vs[0].Name+": "+vs[0].Detail,
			res.EndedAt, art.Faults, cl.Recorders...)
	}
	return res, vs, art
}
