// Package chaos is a deterministic, seedable fault-injection harness
// for simulated MultiEdge clusters. A Runner schedules a timeline of
// faults — link flaps, loss and corruption bursts, duplication, reorder
// spikes, partitions, node pauses — against the phys/cluster hooks
// (OutPort.Fail/Restore and OutPort.SetMangler), and the soak driver in
// soak.go runs a verifying workload underneath while invariant checkers
// (invariants.go) watch for data corruption, double-apply, stuck
// operations and inconsistent statistics.
//
// Everything is reproducible: fault decisions draw from the Runner's
// private random stream, never the simulation's, so the same seed
// yields the same fault timeline and — because the simulator itself is
// deterministic — the bit-identical run.
package chaos

import (
	"fmt"
	"math/rand"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// Event records one scheduled fault for reports.
type Event struct {
	At   sim.Time
	What string
}

// Runner schedules fault timelines against one cluster. Build the whole
// timeline before starting the simulation; faults fire as daemon events,
// so a pending fault never keeps an otherwise-finished run alive.
type Runner struct {
	cl     *cluster.Cluster
	rng    *rand.Rand // private stream: never perturbs the sim's RNG
	muxes  map[*phys.OutPort]*portMux
	Events []Event
}

// New creates a Runner over cl with its own random stream.
func New(cl *cluster.Cluster, seed int64) *Runner {
	return &Runner{
		cl:    cl,
		rng:   rand.New(rand.NewSource(seed)),
		muxes: make(map[*phys.OutPort]*portMux),
	}
}

// Cluster returns the cluster the Runner injects faults into.
func (r *Runner) Cluster() *cluster.Cluster { return r.cl }

// at schedules fn as a daemon event and logs it.
func (r *Runner) at(t sim.Time, what string, fn func()) {
	r.Events = append(r.Events, Event{At: t, What: what})
	r.cl.Env.AtDaemon(t, fn)
}

// logOnly records a windowed effect that needs no discrete event.
func (r *Runner) logOnly(t sim.Time, what string) {
	r.Events = append(r.Events, Event{At: t, What: what})
}

// ---------------------------------------------------------------------
// Hard failures (Fail/Restore based).
// ---------------------------------------------------------------------

// KillLink hard-fails both directions of node's rail at time at.
func (r *Runner) KillLink(at sim.Time, node, link int) {
	r.at(at, fmt.Sprintf("kill link n%d/l%d", node, link), func() { r.cl.FailLink(node, link) })
}

// RestoreLink repairs a killed link at time at.
func (r *Runner) RestoreLink(at sim.Time, node, link int) {
	r.at(at, fmt.Sprintf("restore link n%d/l%d", node, link), func() { r.cl.RestoreLink(node, link) })
}

// FlapLink kills node's rail at time at and restores it after down.
func (r *Runner) FlapLink(at, down sim.Time, node, link int) {
	r.KillLink(at, node, link)
	r.RestoreLink(at+down, node, link)
}

// PauseNode fails every rail of node at time at: the node goes dark.
func (r *Runner) PauseNode(at sim.Time, node int) {
	r.at(at, fmt.Sprintf("pause node n%d", node), func() { r.cl.PauseNode(node) })
}

// ResumeNode restores every rail of a paused node at time at.
func (r *Runner) ResumeNode(at sim.Time, node int) {
	r.at(at, fmt.Sprintf("resume node n%d", node), func() { r.cl.ResumeNode(node) })
}

// KillAllRails is PauseNode under the name the failure-detection tests
// use: every path to the node dies at once and stays dead.
func (r *Runner) KillAllRails(at sim.Time, node int) { r.PauseNode(at, node) }

// KillNode kills a node permanently at time at — PauseNode with no
// matching resume. The service-layer scenario: one replica of a
// replicated backend dies mid-run and never comes back, so every client
// must journal, condemn and fail its in-flight calls over to the
// survivors.
func (r *Runner) KillNode(at sim.Time, node int) {
	r.at(at, fmt.Sprintf("kill node n%d (permanent)", node), func() { r.cl.PauseNode(node) })
}

// CrashRestart models a node crash-restart: every rail dies at once at
// time at and comes back after down. With core.Config.Reconnect the
// surviving connections park, renegotiate an incarnation and replay;
// without it any outage past DeadInterval legitimately kills them
// (pair with Options.ExpectDeath).
func (r *Runner) CrashRestart(at, down sim.Time, node int) {
	r.at(at, fmt.Sprintf("crash node n%d (down %v)", node, down), func() { r.cl.PauseNode(node) })
	r.at(at+down, fmt.Sprintf("restart node n%d", node), func() { r.cl.ResumeNode(node) })
}

// SeverDirection kills only the from→to direction of a rail during
// [at, at+down): from's uplink and the switch ports feeding to go dark,
// while to→from traffic still flows. The classic ack-starvation fault:
// the sender sees total silence and (under Reconnect) parks and
// redials, while the receiver keeps applying data and — once reborn —
// heartbeats into the sender's parked epoch, exercising the stale-
// incarnation fence. On clusters larger than two nodes the downlink
// kill also severs third parties → to; use it on pairwise scenarios.
func (r *Runner) SeverDirection(at, down sim.Time, from, to, link int) {
	oneWay := func(fail bool) {
		ports := []*phys.OutPort{r.cl.RailPorts(from, link)[0]}
		ports = append(ports, r.cl.RailPorts(to, link)[1:]...)
		for _, p := range ports {
			if fail {
				p.Fail()
			} else {
				p.Restore()
			}
		}
	}
	r.at(at, fmt.Sprintf("sever n%d→n%d l%d (down %v)", from, to, link, down),
		func() { oneWay(true) })
	r.at(at+down, fmt.Sprintf("heal n%d→n%d l%d", from, to, link),
		func() { oneWay(false) })
}

// ---------------------------------------------------------------------
// Soft faults (mangler based), active on a [from, to) window.
// ---------------------------------------------------------------------

// portMux composes several windowed effects on one port (a port has a
// single mangler slot). Effects are evaluated in installation order —
// a deterministic order, since timelines are built single-threaded
// before the run — OR-ing fates and summing delays.
type portMux struct {
	env     *sim.Env
	effects []windowed
}

type windowed struct {
	from, to sim.Time // to == 0 means no end
	fn       phys.Mangler
}

func (m *portMux) mangle(f *phys.Frame) phys.Mangle {
	now := m.env.Now()
	var out phys.Mangle
	for _, e := range m.effects {
		if now < e.from || (e.to > 0 && now >= e.to) {
			continue
		}
		g := e.fn(f)
		out.Drop = out.Drop || g.Drop
		out.Corrupt = out.Corrupt || g.Corrupt
		out.Dup = out.Dup || g.Dup
		out.Delay += g.Delay
	}
	return out
}

// addEffect installs fn on port for the window [from, to).
func (r *Runner) addEffect(port *phys.OutPort, from, to sim.Time, fn phys.Mangler) {
	m := r.muxes[port]
	if m == nil {
		m = &portMux{env: r.cl.Env}
		r.muxes[port] = m
		port.SetMangler(m.mangle)
	}
	m.effects = append(m.effects, windowed{from: from, to: to, fn: fn})
}

// railEffect installs fn on both directions of node's rail.
func (r *Runner) railEffect(from, to sim.Time, node, link int, fn phys.Mangler) {
	for _, p := range r.cl.RailPorts(node, link) {
		r.addEffect(p, from, to, fn)
	}
}

// LossBurst drops each frame crossing node's rail with probability prob
// during [from, to). Draws come from the Runner's private stream.
func (r *Runner) LossBurst(from, to sim.Time, node, link int, prob float64) {
	r.logOnly(from, fmt.Sprintf("loss burst n%d/l%d p=%.2f until %v", node, link, prob, to))
	r.railEffect(from, to, node, link, func(_ *phys.Frame) phys.Mangle {
		return phys.Mangle{Drop: r.rng.Float64() < prob}
	})
}

// CorruptBurst flips a byte in each frame crossing node's rail with
// probability prob during [from, to), exercising the frame checksum.
func (r *Runner) CorruptBurst(from, to sim.Time, node, link int, prob float64) {
	r.logOnly(from, fmt.Sprintf("corrupt burst n%d/l%d p=%.2f until %v", node, link, prob, to))
	r.railEffect(from, to, node, link, func(_ *phys.Frame) phys.Mangle {
		return phys.Mangle{Corrupt: r.rng.Float64() < prob}
	})
}

// DuplicateEveryNth delivers every n-th frame on node's rail twice
// during [from, to): the regression knob for receive-side dedupe.
func (r *Runner) DuplicateEveryNth(from, to sim.Time, node, link, n int) {
	r.logOnly(from, fmt.Sprintf("dup every %dth n%d/l%d until %v", n, node, link, to))
	count := 0
	r.railEffect(from, to, node, link, func(_ *phys.Frame) phys.Mangle {
		count++
		return phys.Mangle{Dup: count%n == 0}
	})
}

// ReorderSpike delays each frame on node's rail by a random extra
// latency in [0, maxDelay) during [from, to), so frames overtake each
// other far beyond normal switch jitter.
func (r *Runner) ReorderSpike(from, to sim.Time, node, link int, maxDelay sim.Time) {
	r.logOnly(from, fmt.Sprintf("reorder spike n%d/l%d ±%v until %v", node, link, maxDelay, to))
	r.railEffect(from, to, node, link, func(_ *phys.Frame) phys.Mangle {
		return phys.Mangle{Delay: sim.Time(r.rng.Int63n(int64(maxDelay)))}
	})
}

// Partition drops every frame crossing the cut between groupA and the
// rest of the cluster during [from, to). Nodes on the same side keep
// talking; the two sides cannot reach each other at all.
func (r *Runner) Partition(from, to sim.Time, groupA []int) {
	inA := make(map[int]bool, len(groupA))
	for _, n := range groupA {
		inA[n] = true
	}
	r.logOnly(from, fmt.Sprintf("partition %v | rest until %v", groupA, to))
	crossing := func(f *phys.Frame) phys.Mangle {
		return phys.Mangle{Drop: inA[f.Src.Node()] != inA[f.Dst.Node()]}
	}
	for node := 0; node < len(r.cl.Nodes); node++ {
		for l := 0; l < r.cl.Cfg.LinksPerNode; l++ {
			r.railEffect(from, to, node, l, crossing)
		}
	}
}

// BlackholePair drops every frame between nodes a and b — both
// directions, every rail — during [from, to), while each keeps talking
// to everyone else. This is the path-selective fault relay routing
// exists for: a cannot reach b directly, yet both still reach a third
// node that holds connections to each side. to == 0 leaves the pair
// severed forever.
func (r *Runner) BlackholePair(from, to sim.Time, a, b int) {
	r.logOnly(from, fmt.Sprintf("blackhole n%d↔n%d until %v", a, b, to))
	between := func(f *phys.Frame) phys.Mangle {
		x, y := f.Src.Node(), f.Dst.Node()
		return phys.Mangle{Drop: (x == a && y == b) || (x == b && y == a)}
	}
	for _, node := range []int{a, b} {
		for l := 0; l < r.cl.Cfg.LinksPerNode; l++ {
			r.railEffect(from, to, node, l, between)
		}
	}
}

// ---------------------------------------------------------------------
// Tenant floods (workload based).
// ---------------------------------------------------------------------

// Flood schedules an elephant flood: at time at, conns connections are
// dialed from node from to node to, each tagged with QoS class cls, and
// each streams size-byte writes with a small pipeline of outstanding
// operations until time until, when the connections drain and close.
// The flood is pure workload — it draws nothing from the Runner's
// random stream, so adding one to an existing timeline leaves every
// previously scheduled fault bit-identical. Quota backpressure is part
// of the scenario: a flood class with MaxQueued blocks in admission
// until room appears, exactly like a real greedy tenant.
func (r *Runner) Flood(at, until sim.Time, from, to, cls, conns, size int) {
	const window = 4
	r.logOnly(at, fmt.Sprintf("flood n%d→n%d class %d ×%d (%dB until %v)",
		from, to, cls, conns, size, until))
	for i := 0; i < conns; i++ {
		src := r.cl.Nodes[from].EP.Alloc(size)
		dst := r.cl.Nodes[to].EP.Alloc(size)
		r.cl.Env.AtDaemon(at, func() {
			r.cl.Env.Go(fmt.Sprintf("flood-n%d-n%d", from, to), func(p *sim.Proc) {
				c := r.cl.Nodes[from].EP.Dial(p, to, 0)
				if c.Failed() {
					return
				}
				if cls > 0 {
					c.SetClass(cls)
				}
				var inflight []*core.Handle
				for r.cl.Env.Now() < until && !c.Failed() {
					h, err := c.Do(p, core.Op{Remote: dst, Local: src,
						Size: size, Kind: frame.OpWrite})
					if err != nil {
						break
					}
					inflight = append(inflight, h)
					if len(inflight) >= window {
						inflight[0].Wait(p)
						inflight = inflight[1:]
					}
				}
				for _, h := range inflight {
					h.Wait(p)
				}
				c.Close(p)
			})
		})
	}
}

// Incast schedules a synchronized fan-in burst: at time at, every node
// in senders dials node to simultaneously and streams size-byte writes
// with a small pipeline until time until, when the connections drain
// and close. All senders start on the same tick — the synchronized
// arrival wave that collapses the receiver's switch downlink queue —
// which is exactly the bottleneck pattern congestion control
// (core.Config.CongestionControl + cluster.Config.EcnThreshold) exists
// to survive. Like Flood, the primitive is pure workload: it draws
// nothing from the Runner's random stream, so adding one to an existing
// timeline leaves every previously scheduled fault bit-identical.
func (r *Runner) Incast(at, until sim.Time, senders []int, to, cls, size int) {
	const window = 4
	r.logOnly(at, fmt.Sprintf("incast ×%d→n%d class %d (%dB until %v)",
		len(senders), to, cls, size, until))
	for _, from := range senders {
		from := from
		src := r.cl.Nodes[from].EP.Alloc(size)
		dst := r.cl.Nodes[to].EP.Alloc(size)
		r.cl.Env.AtDaemon(at, func() {
			r.cl.Env.Go(fmt.Sprintf("incast-n%d-n%d", from, to), func(p *sim.Proc) {
				c := r.cl.Nodes[from].EP.Dial(p, to, 0)
				if c.Failed() {
					return
				}
				if cls > 0 {
					c.SetClass(cls)
				}
				var inflight []*core.Handle
				for r.cl.Env.Now() < until && !c.Failed() {
					h, err := c.Do(p, core.Op{Remote: dst, Local: src,
						Size: size, Kind: frame.OpWrite})
					if err != nil {
						break
					}
					inflight = append(inflight, h)
					if len(inflight) >= window {
						inflight[0].Wait(p)
						inflight = inflight[1:]
					}
				}
				for _, h := range inflight {
					h.Wait(p)
				}
				c.Close(p)
			})
		})
	}
}

// ---------------------------------------------------------------------
// Randomized timelines.
// ---------------------------------------------------------------------

// RandomizeOptions bounds a randomized fault timeline.
type RandomizeOptions struct {
	From, To  sim.Time // window the faults land in
	Events    int      // number of faults to schedule
	MaxOutage sim.Time // longest flap/burst duration

	// CrashRestarts additionally schedules that many whole-node
	// crash→restart cycles (PauseNode → ResumeNode after a downtime in
	// [CrashDownMin, CrashDownMax]) spread across the window. With
	// core.Config.Reconnect each cycle is a full park → redial →
	// incarnation bump → replay exercise; without it any downtime past
	// DeadInterval kills connections for real. Zero (the default) draws
	// nothing extra from the seed stream, so timelines built by earlier
	// revisions stay bit-identical.
	CrashRestarts              int
	CrashDownMin, CrashDownMax sim.Time
	// CrashNodes limits which nodes crash; nil means any node.
	CrashNodes []int
}

// Randomize schedules opts.Events random faults — flaps, loss bursts,
// corruption bursts, reorder spikes, duplication windows — across
// random rails, with times, targets and intensities drawn from the
// Runner's seeded stream. The timeline is fully determined at call
// time, so identical seeds build identical timelines.
//
// Outages are bounded by MaxOutage; keep DeadInterval comfortably above
// it (and note overlapping flaps can only shorten an outage — a restore
// always clears the port) so a randomized run never legitimately kills
// a connection.
func (r *Runner) Randomize(opts RandomizeOptions) {
	nodes := len(r.cl.Nodes)
	links := r.cl.Cfg.LinksPerNode
	span := int64(opts.To - opts.From)
	for i := 0; i < opts.Events; i++ {
		at := opts.From + sim.Time(r.rng.Int63n(span))
		dur := 1 + sim.Time(r.rng.Int63n(int64(opts.MaxOutage)))
		node := r.rng.Intn(nodes)
		link := r.rng.Intn(links)
		switch r.rng.Intn(5) {
		case 0:
			r.FlapLink(at, dur, node, link)
		case 1:
			r.LossBurst(at, at+dur, node, link, 0.05+0.40*r.rng.Float64())
		case 2:
			r.CorruptBurst(at, at+dur, node, link, 0.02+0.10*r.rng.Float64())
		case 3:
			r.ReorderSpike(at, at+dur, node, link, 50*sim.Microsecond+sim.Time(r.rng.Int63n(int64(sim.Millisecond))))
		case 4:
			r.DuplicateEveryNth(at, at+dur, node, link, 2+r.rng.Intn(8))
		}
	}
	if opts.CrashRestarts > 0 {
		eligible := opts.CrashNodes
		if len(eligible) == 0 {
			for n := 0; n < nodes; n++ {
				eligible = append(eligible, n)
			}
		}
		lo, hi := opts.CrashDownMin, opts.CrashDownMax
		if lo <= 0 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		// One crash per slot of the window keeps cycles from stacking on
		// the same node; a downtime running past its slot merely overlaps
		// the next crash, which (like overlapping flaps) can only shorten
		// an outage — a restore always clears the ports.
		slot := (opts.To - opts.From) / sim.Time(opts.CrashRestarts)
		for i := 0; i < opts.CrashRestarts; i++ {
			at := opts.From + sim.Time(i)*slot
			if jitter := int64(slot / 4); jitter > 0 {
				at += sim.Time(r.rng.Int63n(jitter))
			}
			down := lo + sim.Time(r.rng.Int63n(int64(hi-lo)+1))
			node := eligible[r.rng.Intn(len(eligible))]
			r.CrashRestart(at, down, node)
		}
	}
}
