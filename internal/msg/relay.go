package msg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"multiedge/internal/frame"
)

// Relay frame envelope (ISSUE 7): the wire format the service layer
// uses to forward an operation through an intermediate node when the
// direct client↔backend path is broken ("direct when possible, relay
// otherwise"). A call is one slot-sized write into the relay's
// per-client-node mailbox region, carrying the operation descriptor and
// — for writes — the payload; the relay issues the operation on its own
// connection to the backend and writes a reply envelope (status plus,
// for reads, the data) back to the client's reply slot. Both writes use
// the Notify flag, so each side demultiplexes envelopes off its
// endpoint's global notification stream.
//
// The envelope lives in this package because it is a peer of the
// messaging layer's slot records: a fixed-layout, bounds-checked record
// written into a remote ring with one-sided operations.

const (
	// RelaySlotBytes is the size of one relay mailbox slot — one call
	// (or reply) envelope, header plus payload.
	RelaySlotBytes = 8 * 1024
	// RelayHdrBytes is the fixed envelope header size.
	RelayHdrBytes = 48
	// MaxRelayPayload bounds the payload a single relayed operation may
	// carry; larger operations must go direct or be fragmented by the
	// caller.
	MaxRelayPayload = RelaySlotBytes - RelayHdrBytes
)

// RelayKind discriminates call and reply envelopes.
type RelayKind uint8

const (
	RelayCall  RelayKind = 1 // client → relay: forward this operation
	RelayReply RelayKind = 2 // relay → client: outcome (and read data)
)

// RelayStatus is the relay's verdict on a forwarded call.
type RelayStatus uint8

const (
	// RelayOK: the operation completed on the backend.
	RelayOK RelayStatus = iota
	// RelayBackendDead: the relay could not reach the backend (dial
	// failed or the forwarding operation died with the connection). The
	// client should condemn the backend and fail over.
	RelayBackendDead
	// RelayBadCall: the envelope did not decode or named an operation
	// the relay refuses (wrong kind, oversized).
	RelayBadCall
)

// ErrBadRelayEnvelope reports a relay slot whose bytes do not form a
// valid envelope.
var ErrBadRelayEnvelope = errors.New("msg: bad relay envelope")

// RelayEnvelope is the decoded header of one relay call or reply. The
// payload (write data on calls, read data on RelayOK read replies)
// follows the header in the slot.
type RelayEnvelope struct {
	Kind    RelayKind
	OpKind  frame.OpType  // OpWrite or OpRead
	Flags   frame.OpFlags // forwarded operation flags
	Status  RelayStatus   // meaningful on replies
	Backend uint32        // target backend node
	CallID  uint64        // client-local call sequence, echoed in the reply
	Token   uint64        // caller token (affinity key), for tracing
	Remote  uint64        // absolute target address in backend memory
	Size    uint32        // operation payload size
	Reply   uint64        // client-memory address of the reply slot
}

// Encode writes the fixed header into dst[:RelayHdrBytes]. The caller
// places the payload at dst[RelayHdrBytes:].
func (e RelayEnvelope) Encode(dst []byte) {
	if len(dst) < RelayHdrBytes {
		panic(fmt.Sprintf("msg: relay envelope buffer %d < %d", len(dst), RelayHdrBytes))
	}
	dst[0] = byte(e.Kind)
	dst[1] = byte(e.OpKind)
	dst[2] = byte(e.Flags)
	dst[3] = byte(e.Status)
	binary.LittleEndian.PutUint32(dst[4:], e.Backend)
	binary.LittleEndian.PutUint64(dst[8:], e.CallID)
	binary.LittleEndian.PutUint64(dst[16:], e.Token)
	binary.LittleEndian.PutUint64(dst[24:], e.Remote)
	binary.LittleEndian.PutUint32(dst[32:], e.Size)
	binary.LittleEndian.PutUint64(dst[40:], e.Reply)
}

// DecodeRelayEnvelope parses and validates a slot's header. It never
// panics on hostile bytes: every malformed field is an
// ErrBadRelayEnvelope.
func DecodeRelayEnvelope(b []byte) (RelayEnvelope, error) {
	var e RelayEnvelope
	if len(b) < RelayHdrBytes {
		return e, fmt.Errorf("%w: %d bytes < header %d", ErrBadRelayEnvelope, len(b), RelayHdrBytes)
	}
	e.Kind = RelayKind(b[0])
	if e.Kind != RelayCall && e.Kind != RelayReply {
		return e, fmt.Errorf("%w: kind %d", ErrBadRelayEnvelope, b[0])
	}
	e.OpKind = frame.OpType(b[1])
	if e.OpKind != frame.OpWrite && e.OpKind != frame.OpRead {
		return e, fmt.Errorf("%w: op kind %d", ErrBadRelayEnvelope, b[1])
	}
	e.Flags = frame.OpFlags(b[2])
	e.Status = RelayStatus(b[3])
	if e.Status > RelayBadCall {
		return e, fmt.Errorf("%w: status %d", ErrBadRelayEnvelope, b[3])
	}
	e.Backend = binary.LittleEndian.Uint32(b[4:])
	e.CallID = binary.LittleEndian.Uint64(b[8:])
	e.Token = binary.LittleEndian.Uint64(b[16:])
	e.Remote = binary.LittleEndian.Uint64(b[24:])
	e.Size = binary.LittleEndian.Uint32(b[32:])
	if e.Size > MaxRelayPayload {
		return e, fmt.Errorf("%w: size %d > %d", ErrBadRelayEnvelope, e.Size, MaxRelayPayload)
	}
	e.Reply = binary.LittleEndian.Uint64(b[40:])
	return e, nil
}
