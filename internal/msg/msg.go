// Package msg is an MPI-style message-passing library over MultiEdge —
// the second application domain of the paper's thesis (IPPS'07 §1:
// edge-based protocols should serve "different application domains" on
// one physical interconnect; §5 compares against MPI-over-VIA work).
//
// Transport mapping:
//
//   - Small messages go EAGER: one remote write into a per-sender ring
//     slot at the receiver, flagged FenceBefore|Notify. The backward
//     fence gives pairwise FIFO message order even over striped,
//     out-of-order links; the notification drives the receiver's
//     matching engine.
//   - Large messages go RENDEZVOUS: the sender stages the payload and
//     sends a ready-to-send (RTS) record; when a matching receive is
//     posted, the receiver pulls the payload with a single remote READ
//     straight into its buffer and returns a FIN. Zero intermediate
//     copies of the bulk data.
//   - Ring slots are flow-controlled with credits returned in batches.
//
// Collectives (Barrier, Bcast, Reduce, Allreduce, Alltoall) are built
// from the point-to-point layer with classic logarithmic algorithms.
//
// A Comm owns its endpoint's notification stream: do not combine it
// with the DSM on the same endpoint.
package msg

import (
	"encoding/binary"
	"fmt"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

const (
	// SlotBytes is one eager ring slot (header + payload).
	SlotBytes = 8 << 10
	// RingSlots is the per-sender ring depth at each receiver.
	RingSlots = 16
	// EagerMax is the largest payload sent eagerly.
	EagerMax = SlotBytes - slotHdr
	// stagingBufs x stagingBytes bound concurrent rendezvous sends.
	stagingBufs  = 4
	stagingBytes = 1 << 20
	// MaxMessage is the largest supported message.
	MaxMessage = stagingBytes

	slotHdr = 24 // kind u8, pad, tag i32(4), size u32, seq u32, addr u64

	kindEager  = 1
	kindRTS    = 2
	kindFIN    = 3
	kindCredit = 4
)

// AnyTag matches any tag in Recv.
const AnyTag = -1

// Comm is one node's communicator.
type Comm struct {
	node  int
	n     int
	ep    *core.Endpoint
	conns []*core.Conn
	env   *sim.Env

	ringBase    uint64 // my inbound rings, one per peer
	creditBase  uint64 // my inbound credit counters, one per peer
	outSlot     uint64 // staging for outgoing slot writes
	outCredit   uint64 // staging for credit returns
	bounce      uint64 // inbound rendezvous pull window
	bounceToken sim.Mailbox[struct{}]
	staging     []uint64
	stageFree   sim.Mailbox[int] // indices of free staging buffers

	// Sender-side per peer: next ring slot and remaining credits.
	txSlot    []int
	txCredits []int
	txWaiters []*sim.Proc // senders blocked on credits (any peer)

	// Receiver-side per peer: slots consumed since last credit return.
	rxConsumed []int

	// Outstanding SQ completions per peer (Core.UseSQ): slot and credit
	// writes ring the doorbell and reap completions opportunistically.
	sqPend []int

	// Matching engine.
	unexpected []*inMsg
	posted     []*postedRecv
	pendingFin map[uint32]*sim.Signal // rendezvous seq -> sender completion
	nextSeq    uint32

	Stats Stats
}

// Stats counts message-layer events.
type Stats struct {
	EagerSent, EagerRecv  uint64
	RndvSent, RndvRecv    uint64
	BytesSent, BytesRecv  uint64
	CreditsReturned       uint64
	UnexpectedMax, Posted int
	CollectiveOps         uint64
	SendStalls            uint64 // times a sender blocked on credits
}

// inMsg is a received-but-unclaimed message.
type inMsg struct {
	from, tag int
	kind      int
	data      []byte // eager payload (copied out of the ring)
	srcAddr   uint64 // rendezvous source
	size      int
	seq       uint32
}

// postedRecv is a receive waiting for a match.
type postedRecv struct {
	from, tag int
	done      sim.Signal
	result    []byte
}

// New builds one communicator per node over an established full mesh.
func New(cl *cluster.Cluster, conns [][]*core.Conn) []*Comm {
	n := cl.Cfg.Nodes
	comms := make([]*Comm, n)
	for i := 0; i < n; i++ {
		ep := cl.Nodes[i].EP
		c := &Comm{
			node: i, n: n, ep: ep, conns: conns[i], env: ep.Env(),
			txSlot: make([]int, n), txCredits: make([]int, n),
			rxConsumed: make([]int, n),
			sqPend:     make([]int, n),
			pendingFin: make(map[uint32]*sim.Signal),
		}
		peers := n - 1
		if peers == 0 {
			peers = 1
		}
		c.ringBase = ep.Alloc(peers * RingSlots * SlotBytes)
		c.creditBase = ep.Alloc(peers * 8)
		c.outSlot = ep.Alloc(SlotBytes)
		c.outCredit = ep.Alloc(8)
		c.bounce = ep.Alloc(stagingBytes)
		c.bounceToken.Send(ep.Env(), struct{}{})
		for b := 0; b < stagingBufs; b++ {
			c.staging = append(c.staging, ep.Alloc(stagingBytes))
			c.stageFree.Send(ep.Env(), b)
		}
		for p := 0; p < n; p++ {
			c.txCredits[p] = RingSlots
		}
		comms[i] = c
	}
	for _, c := range comms {
		c := c
		c.env.Go(fmt.Sprintf("msg-svc-%d", c.node), func(p *sim.Proc) { c.serve(p) })
		c.registerObs()
	}
	return comms
}

// registerObs mirrors the communicator's Stats into the cluster's obs
// registry (no-op when observability is off).
func (c *Comm) registerObs() {
	r := c.ep.Obs()
	if r == nil {
		return
	}
	nl := obs.NodeLabel(c.node)
	r.AddCollector(func(emit func(obs.Sample)) {
		cnt := func(name string, v uint64) {
			emit(obs.Sample{Name: name, Labels: []obs.Label{nl}, Value: float64(v), Type: obs.TypeCounter})
		}
		cnt("msg_eager_sent_total", c.Stats.EagerSent)
		cnt("msg_eager_recv_total", c.Stats.EagerRecv)
		cnt("msg_rndv_sent_total", c.Stats.RndvSent)
		cnt("msg_rndv_recv_total", c.Stats.RndvRecv)
		cnt("msg_bytes_sent_total", c.Stats.BytesSent)
		cnt("msg_bytes_recv_total", c.Stats.BytesRecv)
		cnt("msg_credits_returned_total", c.Stats.CreditsReturned)
		cnt("msg_collective_ops_total", c.Stats.CollectiveOps)
		cnt("msg_send_stalls_total", c.Stats.SendStalls)
		emit(obs.Sample{Name: "msg_unexpected_max", Labels: []obs.Label{nl},
			Value: float64(c.Stats.UnexpectedMax), Type: obs.TypeGauge})
		emit(obs.Sample{Name: "msg_posted", Labels: []obs.Label{nl},
			Value: float64(c.Stats.Posted), Type: obs.TypeGauge})
	})
}

// Rank returns this communicator's node id.
func (c *Comm) Rank() int { return c.node }

// Size returns the number of nodes.
func (c *Comm) Size() int { return c.n }

func peerIndex(me, peer int) int {
	if peer < me {
		return peer
	}
	return peer - 1
}

// slotAddr returns the address of sender's slot s in receiver's ring
// (layout identical on every node).
func (c *Comm) slotAddr(sender, receiver, s int) uint64 {
	return c.ringBase + uint64((peerIndex(receiver, sender)*RingSlots+s)*SlotBytes)
}

func (c *Comm) creditAddr(sender, receiver int) uint64 {
	return c.creditBase + uint64(peerIndex(receiver, sender)*8)
}

// ---------------------------------------------------------------------
// Point-to-point.
// ---------------------------------------------------------------------

// Send delivers data to node `to` under `tag`, blocking until the
// message is safely accepted (eager: acknowledged end-to-end;
// rendezvous: pulled by the receiver). Message order between a pair of
// nodes is preserved.
func (c *Comm) Send(p *sim.Proc, to, tag int, data []byte) {
	if to == c.node {
		panic("msg: send to self")
	}
	if len(data) > MaxMessage {
		panic(fmt.Sprintf("msg: message %d exceeds MaxMessage %d", len(data), MaxMessage))
	}
	if len(data) <= EagerMax {
		sp := c.ep.Obs().StartLayerSpan(c.node, "msg", "send-eager", len(data))
		c.sendEager(p, to, tag, data)
		sp.EndAt(c.env.Now())
		return
	}
	sp := c.ep.Obs().StartLayerSpan(c.node, "msg", "send-rndv", len(data))
	c.sendRendezvous(p, to, tag, data)
	sp.EndAt(c.env.Now())
}

// takeSlot blocks until a ring credit for `to` is available and claims
// the next slot.
func (c *Comm) takeSlot(p *sim.Proc, to int) int {
	for c.txCredits[to] == 0 {
		c.Stats.SendStalls++
		c.txWaiters = append(c.txWaiters, p)
		parkProc(p)
	}
	c.txCredits[to]--
	s := c.txSlot[to]
	c.txSlot[to] = (s + 1) % RingSlots
	return s
}

// parkProc blocks p until wakeWaiters resumes it.
func parkProc(p *sim.Proc) {
	var sig sim.Signal
	parked[p] = &sig
	p.Wait(&sig)
}

// parked tracks blocked senders; package-level is safe because the
// simulation is single-threaded.
var parked = map[*sim.Proc]*sim.Signal{}

func (c *Comm) wakeWaiters() {
	for _, p := range c.txWaiters {
		if sig, ok := parked[p]; ok {
			delete(parked, p)
			sig.Fire(c.env)
		}
	}
	c.txWaiters = nil
}

// writeSlot stages a slot record and writes it into the receiver's
// ring with FenceBefore|Notify (pairwise FIFO + notification).
func (c *Comm) writeSlot(p *sim.Proc, to, s int, kind int, tag int, size int, seq uint32, addr uint64, payload []byte) {
	mem := c.ep.Mem()
	b := mem[c.outSlot : c.outSlot+SlotBytes]
	b[0] = byte(kind)
	binary.LittleEndian.PutUint32(b[4:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(b[8:], uint32(size))
	binary.LittleEndian.PutUint32(b[12:], seq)
	binary.LittleEndian.PutUint64(b[16:], addr)
	copy(b[slotHdr:], payload)
	op := core.Op{
		Remote: c.slotAddr(c.node, to, s), Local: c.outSlot,
		Size: slotHdr + len(payload), Kind: frame.OpWrite,
		Flags: frame.FenceBefore | frame.Notify,
	}
	if c.ep.Config().UseSQ {
		c.conns[to].MustPost(op)
		c.ringSQ(p, c.ep.CPUs().App, to)
	} else {
		c.conns[to].MustDo(p, op)
	}
}

// ringSQ rings the doorbell to peer `to` and reaps any completions that
// have already landed (the layer never blocks on slot or credit writes
// — the receiver's notification is the synchronization point — so
// opportunistic polling is all the CQ maintenance needed).
func (c *Comm) ringSQ(p *sim.Proc, cpu *sim.Resource, to int) {
	c.sqPend[to] += c.conns[to].MustRingOn(p, cpu)
	for c.sqPend[to] > 0 {
		if _, ok := c.conns[to].PollCQ(); !ok {
			break
		}
		c.sqPend[to]--
	}
}

func (c *Comm) sendEager(p *sim.Proc, to, tag int, data []byte) {
	s := c.takeSlot(p, to)
	c.writeSlot(p, to, s, kindEager, tag, len(data), 0, 0, data)
	c.Stats.EagerSent++
	c.Stats.BytesSent += uint64(len(data))
}

func (c *Comm) sendRendezvous(p *sim.Proc, to, tag int, data []byte) {
	buf := c.stageFree.Recv(p) // bound concurrent rendezvous
	addr := c.staging[buf]
	copy(c.ep.Mem()[addr:addr+uint64(len(data))], data)
	seq := c.nextSeq
	c.nextSeq++
	fin := &sim.Signal{}
	c.pendingFin[seq] = fin
	s := c.takeSlot(p, to)
	c.writeSlot(p, to, s, kindRTS, tag, len(data), seq, addr, nil)
	c.Stats.RndvSent++
	c.Stats.BytesSent += uint64(len(data))
	p.Wait(fin) // receiver pulled the data
	c.stageFree.Send(c.env, buf)
}

// Recv blocks until a message from `from` (which must be a concrete
// rank) with the given tag (or AnyTag) arrives, and returns its
// payload.
func (c *Comm) Recv(p *sim.Proc, from, tag int) []byte {
	if m := c.takeUnexpected(from, tag); m != nil {
		return c.claim(p, m)
	}
	pr := &postedRecv{from: from, tag: tag}
	c.posted = append(c.posted, pr)
	if len(c.posted) > c.Stats.Posted {
		c.Stats.Posted = len(c.posted)
	}
	p.Wait(&pr.done)
	return pr.result
}

// takeUnexpected removes and returns the oldest matching queued message.
func (c *Comm) takeUnexpected(from, tag int) *inMsg {
	for i, m := range c.unexpected {
		if m.from == from && (tag == AnyTag || m.tag == tag) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			return m
		}
	}
	return nil
}

// claim finishes delivery of a matched message in the receiver's
// context: eager data is already copied out; rendezvous data is pulled
// with a remote read here.
func (c *Comm) claim(p *sim.Proc, m *inMsg) []byte {
	if m.kind == kindEager {
		return m.data
	}
	// Rendezvous: pull the staged payload from the sender into the
	// bounce window (serialized by a token: concurrent pulls share it).
	c.bounceToken.Recv(p)
	out := make([]byte, m.size)
	for off := 0; off < m.size; off += stagingBytes {
		n := m.size - off
		if n > stagingBytes {
			n = stagingBytes
		}
		h := c.conns[m.from].MustDo(p, core.Op{Remote: m.srcAddr + uint64(off), Local: c.bounce, Size: n, Kind: frame.OpRead})
		h.Wait(p)
		copy(out[off:], c.ep.Mem()[c.bounce:c.bounce+uint64(n)])
	}
	c.bounceToken.Send(c.env, struct{}{})
	c.Stats.RndvRecv++
	c.Stats.BytesRecv += uint64(m.size)
	// FIN: tell the sender its staging buffer is free.
	c.sendCtl(p, m.from, kindFIN, 0, 0, m.seq, 0)
	return out
}

// sendCtl sends a control record (FIN/credit) through the ring without
// consuming an eager credit of its own — control records are small and
// self-limiting (at most one FIN per staging buffer, credits batched).
// They still take a slot for simplicity, so reserve one credit.
func (c *Comm) sendCtl(p *sim.Proc, to, kind, tag, size int, seq uint32, addr uint64) {
	s := c.takeSlot(p, to)
	c.writeSlot(p, to, s, kind, tag, size, seq, addr, nil)
}

// ---------------------------------------------------------------------
// Service process: notification demultiplexing and matching.
// ---------------------------------------------------------------------

func (c *Comm) serve(p *sim.Proc) {
	notify := c.ep.GlobalNotify()
	for {
		n := notify.Recv(p)
		c.handle(p, n)
	}
}

func (c *Comm) handle(p *sim.Proc, n core.Notification) {
	mem := c.ep.Mem()
	kind := int(mem[n.Addr])
	from := n.From
	if kind == kindCredit {
		// Credit records are 8 bytes at the credit word, not a ring slot.
		c.txCredits[from] += int(binary.LittleEndian.Uint32(mem[n.Addr+4:]))
		c.wakeWaiters()
		return
	}
	b := mem[n.Addr : n.Addr+uint64(slotHdr)]
	tag := int(int32(binary.LittleEndian.Uint32(b[4:])))
	size := int(binary.LittleEndian.Uint32(b[8:]))
	seq := binary.LittleEndian.Uint32(b[12:])
	addr := binary.LittleEndian.Uint64(b[16:])
	switch kind {
	case kindFIN:
		if sig, ok := c.pendingFin[seq]; ok {
			delete(c.pendingFin, seq)
			sig.Fire(c.env)
		}
		c.creditSlot(p, from)
		return
	}
	m := &inMsg{from: from, tag: tag, kind: kind, size: size, seq: seq, srcAddr: addr}
	if kind == kindEager {
		data := make([]byte, size)
		copy(data, mem[n.Addr+uint64(slotHdr):n.Addr+uint64(slotHdr+size)])
		m.data = data
		c.Stats.EagerRecv++
		c.Stats.BytesRecv += uint64(size)
	}
	c.creditSlot(p, from)
	// Match against posted receives.
	for i, pr := range c.posted {
		if pr.from == from && (pr.tag == AnyTag || pr.tag == m.tag) {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			c.deliver(pr, m)
			return
		}
	}
	c.unexpected = append(c.unexpected, m)
	if len(c.unexpected) > c.Stats.UnexpectedMax {
		c.Stats.UnexpectedMax = len(c.unexpected)
	}
}

// deliver completes a posted receive. Rendezvous pulls run in their own
// process so the service loop stays responsive.
func (c *Comm) deliver(pr *postedRecv, m *inMsg) {
	if m.kind == kindEager {
		pr.result = m.data
		pr.done.Fire(c.env)
		return
	}
	c.env.Go(fmt.Sprintf("msg-pull-%d", c.node), func(p2 *sim.Proc) {
		pr.result = c.claim(p2, m)
		pr.done.Fire(c.env)
	})
}

// creditSlot accounts one consumed ring slot and returns credits in
// batches of RingSlots/2.
func (c *Comm) creditSlot(p *sim.Proc, from int) {
	c.rxConsumed[from]++
	if c.rxConsumed[from] < RingSlots/2 {
		return
	}
	batch := c.rxConsumed[from]
	c.rxConsumed[from] = 0
	c.Stats.CreditsReturned += uint64(batch)
	mem := c.ep.Mem()
	b := mem[c.outCredit : c.outCredit+8]
	b[0] = kindCredit
	binary.LittleEndian.PutUint32(b[4:], uint32(batch))
	// Credits bypass the ring: a plain fenced+notifying write into the
	// sender's credit word.
	op := core.Op{
		Remote: c.creditAddr(c.node, from), Local: c.outCredit, Size: 8,
		Kind: frame.OpWrite, Flags: frame.FenceBefore | frame.Notify,
	}
	if c.ep.Config().UseSQ {
		c.conns[from].MustPost(op)
		c.ringSQ(p, c.ep.CPUs().Proto, from)
	} else {
		c.conns[from].MustDoOn(p, c.ep.CPUs().Proto, op)
	}
}
