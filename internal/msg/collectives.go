package msg

import (
	"encoding/binary"
	"math"

	"multiedge/internal/sim"
)

// Collective operations over the point-to-point layer, using reserved
// negative tags so they never collide with application traffic. All of
// them are classic logarithmic algorithms; every rank must call the
// same collectives in the same order.
const (
	tagBarrier = -100 - iota*100 // one tag band per collective
	tagBcast
	tagReduce
	tagAllreduce
	tagAlltoall
	tagGather
)

// Barrier blocks until every rank has entered it (dissemination
// algorithm: log2(n) rounds of pairwise token exchange).
func (c *Comm) Barrier(p *sim.Proc) {
	c.Stats.CollectiveOps++
	if c.n == 1 {
		return
	}
	for round, dist := 0, 1; dist < c.n; round, dist = round+1, dist*2 {
		to := (c.node + dist) % c.n
		from := (c.node - dist + c.n) % c.n
		c.Send(p, to, tagBarrier-round, nil)
		c.Recv(p, from, tagBarrier-round)
	}
}

// Bcast distributes root's data to every rank (binomial tree) and
// returns each rank's copy.
func (c *Comm) Bcast(p *sim.Proc, root int, data []byte) []byte {
	c.Stats.CollectiveOps++
	if c.n == 1 {
		return data
	}
	// Standard binomial tree in root-relative rank space: a rank
	// receives from vrank-lowbit(vrank), then relays to vrank+mask for
	// each mask below its lowest set bit, high to low.
	vrank := (c.node - root + c.n) % c.n
	mask := 1
	for mask < c.n {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % c.n
			data = c.Recv(p, parent, tagBcast)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := vrank + mask; child < c.n {
			c.Send(p, (child+root)%c.n, tagBcast, data)
		}
	}
	return data
}

// Reduce sums float64 vectors onto root (binomial tree); only root's
// return value is the full sum, other ranks return nil.
func (c *Comm) Reduce(p *sim.Proc, root int, vals []float64) []float64 {
	c.Stats.CollectiveOps++
	acc := append([]float64(nil), vals...)
	vrank := (c.node - root + c.n) % c.n
	for dist := 1; dist < c.n; dist *= 2 {
		if vrank&dist != 0 {
			// Send accumulator to the partner and exit the tree.
			to := ((vrank - dist) + root) % c.n
			c.Send(p, to, tagReduce, encodeF64s(acc))
			return nil
		}
		partner := vrank + dist
		if partner < c.n {
			in := decodeF64s(c.Recv(p, (partner+root)%c.n, tagReduce))
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
	return acc
}

// Allreduce sums float64 vectors across all ranks and returns the sum
// on every rank (reduce to 0, then broadcast).
func (c *Comm) Allreduce(p *sim.Proc, vals []float64) []float64 {
	sum := c.Reduce(p, 0, vals)
	var buf []byte
	if c.node == 0 {
		buf = encodeF64s(sum)
	}
	return decodeF64s(c.Bcast(p, 0, buf))
}

// Alltoall performs the personalized all-to-all exchange (every rank
// sends send[j] to rank j and receives from every rank) with a pairwise
// exchange schedule that avoids hot spots. send[c.Rank()] is returned
// in place.
func (c *Comm) Alltoall(p *sim.Proc, send [][]byte) [][]byte {
	c.Stats.CollectiveOps++
	if len(send) != c.n {
		panic("msg: Alltoall needs one buffer per rank")
	}
	recv := make([][]byte, c.n)
	recv[c.node] = send[c.node]
	if c.n&(c.n-1) == 0 {
		// Power of two: XOR pairwise exchange; the lower rank of each
		// pair sends first so the two sides never rendezvous-block on
		// each other.
		for step := 1; step < c.n; step++ {
			partner := c.node ^ step
			if c.node < partner {
				c.Send(p, partner, tagAlltoall-step, send[partner])
				recv[partner] = c.Recv(p, partner, tagAlltoall-step)
			} else {
				recv[partner] = c.Recv(p, partner, tagAlltoall-step)
				c.Send(p, partner, tagAlltoall-step, send[partner])
			}
		}
		return recv
	}
	// General sizes: ring schedule, overlapping each step's send with
	// its receive via a helper process.
	var pending []*sim.Signal
	for step := 1; step < c.n; step++ {
		to := (c.node + step) % c.n
		from := (c.node - step + c.n) % c.n
		pending = append(pending, c.isend(p, to, tagAlltoall-step, send[to]))
		recv[from] = c.Recv(p, from, tagAlltoall-step)
	}
	for _, s := range pending {
		p.Wait(s)
	}
	return recv
}

// Gather collects every rank's buffer at root; returns n buffers at
// root, nil elsewhere.
func (c *Comm) Gather(p *sim.Proc, root int, data []byte) [][]byte {
	c.Stats.CollectiveOps++
	if c.node != root {
		c.Send(p, root, tagGather, data)
		return nil
	}
	out := make([][]byte, c.n)
	out[root] = data
	for r := 0; r < c.n; r++ {
		if r == root {
			continue
		}
		out[r] = c.Recv(p, r, tagGather)
	}
	return out
}

// isend starts a send in a helper process (used by the ring fallback of
// Alltoall so send and receive overlap) and returns its completion
// signal.
func (c *Comm) isend(p *sim.Proc, to, tag int, data []byte) *sim.Signal {
	sig := &sim.Signal{}
	c.env.Go("msg-isend", func(p2 *sim.Proc) {
		c.Send(p2, to, tag, data)
		sig.Fire(c.env)
	})
	return sig
}

func encodeF64s(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func decodeF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
