package msg

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

// build creates communicators over a cluster configuration.
func build(t *testing.T, cfg cluster.Config) (*cluster.Cluster, []*Comm) {
	t.Helper()
	cfg.Core.MemBytes = 32 << 20
	cl := cluster.New(cfg)
	comms := New(cl, cl.FullMesh())
	return cl, comms
}

// runAll spawns fn per rank and fails unless all finish by the horizon.
func runAll(t *testing.T, cl *cluster.Cluster, comms []*Comm, horizon sim.Time, fn func(p *sim.Proc, c *Comm)) {
	t.Helper()
	done := 0
	for _, c := range comms {
		c := c
		cl.Env.Go(fmt.Sprintf("rank%d", c.Rank()), func(p *sim.Proc) {
			fn(p, c)
			done++
		})
	}
	cl.Env.RunUntil(horizon)
	if done != len(comms) {
		t.Fatalf("only %d/%d ranks finished", done, len(comms))
	}
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

func TestEagerSendRecv(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(2))
	msg := []byte("eager path message")
	runAll(t, cl, comms, 10*sim.Second, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 7, msg)
		} else {
			got := c.Recv(p, 0, 7)
			if !bytes.Equal(got, msg) {
				t.Errorf("got %q", got)
			}
		}
	})
	if comms[0].Stats.EagerSent != 1 || comms[0].Stats.RndvSent != 0 {
		t.Errorf("stats: %+v", comms[0].Stats)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(2))
	msg := pattern(600*1024, 3) // well above EagerMax
	runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 9, msg)
		} else {
			got := c.Recv(p, 0, 9)
			if !bytes.Equal(got, msg) {
				t.Error("rendezvous payload corrupted")
			}
		}
	})
	if comms[0].Stats.RndvSent != 1 {
		t.Errorf("rendezvous not used: %+v", comms[0].Stats)
	}
}

func TestPairwiseOrdering(t *testing.T) {
	// Many same-tag messages must arrive in send order even over two
	// unordered striped links.
	cl, comms := build(t, cluster.TwoLinkUnordered1G(2))
	const k = 100
	runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(p, 1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				got := c.Recv(p, 0, 5)
				if got[0] != byte(i) {
					t.Fatalf("message %d arrived as %d (order violated)", i, got[0])
				}
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(2))
	runAll(t, cl, comms, 10*sim.Second, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 1, []byte("one"))
			c.Send(p, 1, 2, []byte("two"))
			c.Send(p, 1, 3, []byte("three"))
		} else {
			// Receive out of tag order: matching must hold back the
			// others as unexpected messages.
			if got := c.Recv(p, 0, 3); string(got) != "three" {
				t.Errorf("tag 3 = %q", got)
			}
			if got := c.Recv(p, 0, 1); string(got) != "one" {
				t.Errorf("tag 1 = %q", got)
			}
			if got := c.Recv(p, 0, AnyTag); string(got) != "two" {
				t.Errorf("AnyTag = %q", got)
			}
		}
	})
	if comms[1].Stats.UnexpectedMax == 0 {
		t.Error("no unexpected-queue usage recorded")
	}
}

func TestCreditBackpressure(t *testing.T) {
	// Fire far more eager messages than ring slots before the receiver
	// drains: the sender must stall on credits and still deliver all.
	cl, comms := build(t, cluster.OneLink1G(2))
	const k = 5 * RingSlots
	runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(p, 1, 4, pattern(512, byte(i)))
			}
		} else {
			p.Sleep(5 * sim.Millisecond) // let the ring fill
			for i := 0; i < k; i++ {
				got := c.Recv(p, 0, 4)
				if !bytes.Equal(got, pattern(512, byte(i))) {
					t.Fatalf("message %d corrupted", i)
				}
			}
		}
	})
	if comms[0].Stats.SendStalls == 0 {
		t.Error("sender never stalled despite ring overflow")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(5))
	var after [5]sim.Time
	runAll(t, cl, comms, 20*sim.Second, func(p *sim.Proc, c *Comm) {
		p.Sleep(sim.Time(c.Rank()) * sim.Millisecond)
		c.Barrier(p)
		after[c.Rank()] = cl.Env.Now()
	})
	for r, at := range after {
		if at < 4*sim.Millisecond {
			t.Errorf("rank %d left barrier at %v, before last arrival", r, at)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		cl, comms := build(t, cluster.OneLink1G(n))
		data := pattern(3000, byte(n))
		runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
			for root := 0; root < c.Size(); root++ {
				var in []byte
				if c.Rank() == root {
					in = data
				}
				out := c.Bcast(p, root, in)
				if !bytes.Equal(out, data) {
					t.Errorf("n=%d root=%d rank=%d: bad bcast", n, root, c.Rank())
				}
				c.Barrier(p)
			}
		})
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		cl, comms := build(t, cluster.OneLink1G(n))
		runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
			vals := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
			sum := c.Reduce(p, 0, vals)
			wantA := float64(n*(n-1)) / 2
			var wantC float64
			for r := 0; r < n; r++ {
				wantC += float64(r * r)
			}
			if c.Rank() == 0 {
				if sum[0] != wantA || sum[1] != float64(n) || sum[2] != wantC {
					t.Errorf("n=%d reduce = %v", n, sum)
				}
			} else if sum != nil {
				t.Errorf("non-root got a reduce result")
			}
			c.Barrier(p)
			all := c.Allreduce(p, vals)
			if all[0] != wantA || all[1] != float64(n) || all[2] != wantC {
				t.Errorf("n=%d rank=%d allreduce = %v", n, c.Rank(), all)
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		cl, comms := build(t, cluster.OneLink1G(n))
		runAll(t, cl, comms, 60*sim.Second, func(p *sim.Proc, c *Comm) {
			send := make([][]byte, n)
			for j := 0; j < n; j++ {
				send[j] = pattern(2048, byte(c.Rank()*16+j))
			}
			recv := c.Alltoall(p, send)
			for j := 0; j < n; j++ {
				if !bytes.Equal(recv[j], pattern(2048, byte(j*16+c.Rank()))) {
					t.Errorf("n=%d rank=%d: block from %d corrupted", n, c.Rank(), j)
				}
			}
		})
	}
}

func TestGather(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(6))
	runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
		out := c.Gather(p, 2, pattern(777, byte(c.Rank())))
		if c.Rank() == 2 {
			for r := 0; r < 6; r++ {
				if !bytes.Equal(out[r], pattern(777, byte(r))) {
					t.Errorf("gather block %d corrupted", r)
				}
			}
		} else if out != nil {
			t.Error("non-root got gather output")
		}
	})
}

func TestMessagingUnderLossAndReordering(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(3)
	cfg.Link.LossProb = 0.01
	cfg.Seed = 9
	cl, comms := build(t, cfg)
	runAll(t, cl, comms, 120*sim.Second, func(p *sim.Proc, c *Comm) {
		// Ring of mixed eager and rendezvous messages.
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		for i := 0; i < 10; i++ {
			sz := 200
			if i%3 == 0 {
				sz = 100 * 1024
			}
			pending := c.isend(p, next, 40+i, pattern(sz, byte(i)))
			got := c.Recv(p, prev, 40+i)
			if !bytes.Equal(got, pattern(sz, byte(i))) {
				t.Errorf("rank %d msg %d corrupted", c.Rank(), i)
			}
			p.Wait(pending)
		}
		c.Barrier(p)
	})
}

// Property: random mixtures of message sizes and tags are delivered
// intact and in per-pair order.
func TestPropertyMessageIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.Seed = seed
		cfg.Core.MemBytes = 32 << 20
		cl := cluster.New(cfg)
		comms := New(cl, cl.FullMesh())
		ok := true
		done := 0
		cl.Env.Go("send", func(p *sim.Proc) {
			for i, s := range sizes {
				comms[0].Send(p, 1, 70, pattern(int(s)%200000, byte(i)))
			}
			done++
		})
		cl.Env.Go("recv", func(p *sim.Proc) {
			for i, s := range sizes {
				got := comms[1].Recv(p, 0, 70)
				if !bytes.Equal(got, pattern(int(s)%200000, byte(i))) {
					ok = false
				}
			}
			done++
		})
		cl.Env.RunUntil(120 * sim.Second)
		return ok && done == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCollectivesUnderLoss(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(5)
	cfg.Link.LossProb = 0.01
	cfg.Seed = 31
	cl, comms := build(t, cfg)
	runAll(t, cl, comms, 240*sim.Second, func(p *sim.Proc, c *Comm) {
		for i := 0; i < 3; i++ {
			c.Barrier(p)
			vals := []float64{float64(c.Rank() + i)}
			sum := c.Allreduce(p, vals)
			var want float64
			for r := 0; r < c.Size(); r++ {
				want += float64(r + i)
			}
			if sum[0] != want {
				t.Errorf("round %d rank %d: allreduce %v != %v", i, c.Rank(), sum[0], want)
			}
			data := c.Bcast(p, i%c.Size(), pattern(3000, byte(i)))
			if !bytes.Equal(data, pattern(3000, byte(i))) {
				t.Errorf("round %d: bcast corrupted", i)
			}
		}
	})
}

func TestConcurrentRendezvousBoundedByStaging(t *testing.T) {
	// More concurrent large sends than staging buffers: they must
	// serialize on the staging pool and all complete.
	cl, comms := build(t, cluster.OneLink1G(2))
	const k = 2 * stagingBufs
	done := 0
	for i := 0; i < k; i++ {
		i := i
		cl.Env.Go(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			comms[0].Send(p, 1, 90+i, pattern(200*1024, byte(i)))
			done++
		})
	}
	cl.Env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			got := comms[1].Recv(p, 0, 90+i)
			if !bytes.Equal(got, pattern(200*1024, byte(i))) {
				t.Errorf("rendezvous %d corrupted", i)
			}
		}
	})
	cl.Env.RunUntil(120 * sim.Second)
	if done != k {
		t.Fatalf("only %d/%d rendezvous sends completed", done, k)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(2))
	panicked := false
	cl.Env.Go("bad", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		comms[0].Send(p, 0, 1, []byte("x"))
	})
	func() {
		defer func() { recover() }()
		cl.Env.RunUntil(sim.Second)
	}()
	if !panicked {
		t.Fatal("send to self did not panic")
	}
}

func TestEagerRendezvousBoundary(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(2))
	runAll(t, cl, comms, 30*sim.Second, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 1, pattern(EagerMax, 1))   // largest eager
			c.Send(p, 1, 2, pattern(EagerMax+1, 2)) // smallest rendezvous
		} else {
			if got := c.Recv(p, 0, 1); !bytes.Equal(got, pattern(EagerMax, 1)) {
				t.Error("EagerMax message corrupted")
			}
			if got := c.Recv(p, 0, 2); !bytes.Equal(got, pattern(EagerMax+1, 2)) {
				t.Error("EagerMax+1 message corrupted")
			}
		}
	})
	if comms[0].Stats.EagerSent != 1 || comms[0].Stats.RndvSent != 1 {
		t.Errorf("boundary routing wrong: %+v", comms[0].Stats)
	}
}

func TestOversizeMessagePanics(t *testing.T) {
	cl, comms := build(t, cluster.OneLink1G(2))
	panicked := false
	cl.Env.Go("bad", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		comms[0].Send(p, 1, 1, make([]byte, MaxMessage+1))
	})
	func() {
		defer func() { recover() }()
		cl.Env.RunUntil(sim.Second)
	}()
	if !panicked {
		t.Fatal("oversize message did not panic")
	}
}

// TestCollectivesSurviveLinkFailure runs the full collective repertoire
// with one rank's rail hard-failed mid-run: the messaging layer sits on
// MultiEdge's reliable operations, so a dead rail may cost time but
// never correctness or completion.
func TestCollectivesSurviveLinkFailure(t *testing.T) {
	const n = 4
	cl, comms := build(t, cluster.TwoLinkUnordered1G(n))
	cl.Env.At(200*sim.Microsecond, func() { cl.FailLink(2, 1) })
	data := pattern(20000, 9)
	runAll(t, cl, comms, 60*sim.Second, func(p *sim.Proc, c *Comm) {
		c.Barrier(p)
		got := c.Bcast(p, 0, data)
		if !bytes.Equal(got, data) {
			t.Errorf("rank %d: bcast corrupted under link failure", c.Rank())
		}
		sum := c.Allreduce(p, []float64{float64(c.Rank() + 1)})[0]
		if want := float64(n * (n + 1) / 2); sum != want {
			t.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), sum, want)
		}
		send := make([][]byte, c.Size())
		for j := range send {
			send[j] = pattern(3000, byte(c.Rank()*8+j))
		}
		recv := c.Alltoall(p, send)
		for j, b := range recv {
			if !bytes.Equal(b, pattern(3000, byte(j*8+c.Rank()))) {
				t.Errorf("rank %d: alltoall slot %d corrupted", c.Rank(), j)
			}
		}
		c.Barrier(p)
	})
	if drops := cl.Collect().LinkFailDrops; drops == 0 {
		t.Fatal("the fault never bit (0 frames lost)")
	}
}
