package msg

import (
	"errors"
	"testing"

	"multiedge/internal/frame"
)

func TestRelayEnvelopeRoundTrip(t *testing.T) {
	in := RelayEnvelope{
		Kind: RelayCall, OpKind: frame.OpWrite, Flags: frame.Notify,
		Status: RelayOK, Backend: 2, CallID: 77, Token: 0xdeadbeef,
		Remote: 1 << 40, Size: MaxRelayPayload, Reply: 4096,
	}
	buf := make([]byte, RelaySlotBytes)
	in.Encode(buf)
	out, err := DecodeRelayEnvelope(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRelayEnvelopeDecodeRejects(t *testing.T) {
	good := RelayEnvelope{Kind: RelayReply, OpKind: frame.OpRead, Status: RelayBackendDead, Size: 8}
	buf := make([]byte, RelayHdrBytes)
	good.Encode(buf)
	if _, err := DecodeRelayEnvelope(buf); err != nil {
		t.Fatalf("valid envelope rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"short", func(b []byte) {}}, // handled below with a truncated slice
		{"kind", func(b []byte) { b[0] = 9 }},
		{"opkind", func(b []byte) { b[1] = 200 }},
		{"status", func(b []byte) { b[3] = 7 }},
		{"oversize", func(b []byte) { b[32] = 0xff; b[33] = 0xff; b[34] = 0xff; b[35] = 0x7f }},
	}
	for _, tc := range cases {
		b := make([]byte, RelayHdrBytes)
		good.Encode(b)
		if tc.name == "short" {
			b = b[:RelayHdrBytes-1]
		} else {
			tc.mutate(b)
		}
		if _, err := DecodeRelayEnvelope(b); !errors.Is(err, ErrBadRelayEnvelope) {
			t.Errorf("%s: err = %v, want ErrBadRelayEnvelope", tc.name, err)
		}
	}
}
