package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"multiedge/internal/sim"
)

func TestTraceRecordAndSummary(t *testing.T) {
	e := sim.NewEnv(1)
	tr := New(e, 100)
	e.After(10, func() { tr.Add(0, 1, TxData, 5, 1444) })
	e.After(20, func() { tr.Add(1, 1, RxData, 5, 1444) })
	e.After(30, func() { tr.Add(1, 1, RxOutOfOrder, 7, 1444) })
	e.Run()
	if tr.Count(TxData) != 1 || tr.Count(RxData) != 1 || tr.Count(RxOutOfOrder) != 1 {
		t.Fatalf("counts wrong: %d %d %d", tr.Count(TxData), tr.Count(RxData), tr.Count(RxOutOfOrder))
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].At != 10 || evs[2].Kind != RxOutOfOrder {
		t.Fatalf("events = %+v", evs)
	}
	s := tr.Summary()
	for _, want := range []string{"tx-data", "rx-data", "rx-ooo", "1444"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestTraceRingWrap(t *testing.T) {
	e := sim.NewEnv(1)
	tr := New(e, 4)
	e.After(0, func() {
		for i := 0; i < 10; i++ {
			tr.Add(0, 1, TxData, uint32(i), 10)
		}
	})
	e.Run()
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("retained wrong window: %+v", evs)
	}
	if tr.Count(TxData) != 10 {
		t.Errorf("aggregate count = %d, want 10 (counts survive eviction)", tr.Count(TxData))
	}
}

func TestTimeline(t *testing.T) {
	e := sim.NewEnv(1)
	tr := New(e, 100)
	e.After(5, func() { tr.Add(0, 1, TxData, 1, 100) })
	e.After(15, func() { tr.Add(0, 1, TxData, 2, 100) })
	e.After(16, func() { tr.Add(0, 1, TxRetransmit, 1, 100) })
	e.Run()
	out := tr.Timeline(10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 buckets
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(lines[0], "tx-retrans") {
		t.Error("timeline header missing kinds")
	}
}

func TestKindString(t *testing.T) {
	if TxData.String() != "tx-data" || RxHeld.String() != "rx-held" {
		t.Error("kind names wrong")
	}
	if Kind(77).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestSampler(t *testing.T) {
	e := sim.NewEnv(1)
	v := 0.0
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			v = float64(i)
		}
	})
	s := NewSampler(e, 100, 900, func() float64 { return v })
	e.Run()
	if len(s.S.Values) < 8 {
		t.Fatalf("samples = %d", len(s.S.Values))
	}
	min, max, mean := s.S.Stats()
	if min > max || mean < min || mean > max {
		t.Errorf("stats incoherent: %v %v %v", min, max, mean)
	}
	if max < 50 {
		t.Errorf("max = %v, expected to track the rising metric", max)
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{}
	for i := 0; i < 100; i++ {
		s.Times = append(s.Times, sim.Time(i))
		s.Values = append(s.Values, float64(i%10))
	}
	out := s.Render(40, 5)
	if !strings.Contains(out, "samples 100") || !strings.Contains(out, "#") {
		t.Errorf("render:\n%s", out)
	}
	if (&Series{}).Render(10, 3) == "" {
		t.Error("empty render empty")
	}
}

func TestZeroCapDefault(t *testing.T) {
	e := sim.NewEnv(1)
	tr := New(e, 0)
	e.After(0, func() { tr.Add(0, 0, TxData, 0, 0) })
	e.Run()
	if len(tr.Events()) != 1 {
		t.Error("default-capacity trace broken")
	}
}

// TestTraceRingProperty: for any capacity and any number of recorded
// events, the ring retains exactly min(total, cap) events, returns them
// oldest-first with monotonically non-decreasing timestamps, keeps the
// newest events (the retained suffix of the full sequence), and the
// aggregate counters still see everything that fell off.
func TestTraceRingProperty(t *testing.T) {
	prop := func(capRaw uint8, totalRaw uint16) bool {
		capacity := int(capRaw)%64 + 1
		total := int(totalRaw) % 300
		env := sim.NewEnv(1)
		tr := New(env, capacity)
		for i := 0; i < total; i++ {
			i := i
			env.After(sim.Time(i+1)*sim.Microsecond, func() {
				tr.Add(0, 0, TxData, uint32(i), i)
			})
		}
		env.Run()
		evs := tr.Events()
		want := total
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for j, e := range evs {
			// The retained events are the last `want` of the sequence.
			if e.Seq != uint32(total-want+j) {
				return false
			}
			if j > 0 && e.At < evs[j-1].At {
				return false
			}
		}
		return tr.Count(TxData) == uint64(total)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	var l LatencyRecorder
	if l.Percentile(50) != 0 || l.Mean() != 0 {
		t.Error("empty recorder must report zero")
	}
	// 1..100 us, recorded shuffled.
	for i := 0; i < 100; i++ {
		l.Record(sim.Time((i*37)%100+1) * sim.Microsecond)
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{50, 50 * sim.Microsecond},
		{90, 90 * sim.Microsecond},
		{99, 99 * sim.Microsecond},
		{100, 100 * sim.Microsecond},
		{1, 1 * sim.Microsecond},
	}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if l.Mean() != 50500*sim.Nanosecond {
		t.Errorf("mean = %v, want 50.5us", l.Mean())
	}
	if l.Count() != 100 {
		t.Errorf("count = %d", l.Count())
	}
	// Recording after a percentile query must re-sort.
	l.Record(1000 * sim.Microsecond)
	if got := l.Percentile(100); got != 1000*sim.Microsecond {
		t.Errorf("max after late record = %v", got)
	}
}

// TestLatencyRecorderProperty: percentiles are monotone in p and
// bounded by min/max of the samples.
func TestLatencyRecorderProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var l LatencyRecorder
		min, max := sim.Time(1<<62), sim.Time(0)
		for _, r := range raw {
			d := sim.Time(r % 1e6)
			l.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		prev := sim.Time(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := l.Percentile(p)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddClampsOutOfRangeKind(t *testing.T) {
	e := sim.NewEnv(1)
	tr := New(e, 16)
	e.After(10, func() {
		tr.Add(0, 1, Kind(200), 3, 50) // way past kindCount
		tr.Add(0, 1, kindCount, 4, 60) // first out-of-range value
		tr.Add(0, 1, TxData, 5, 70)
	})
	e.Run()
	if got := tr.Count(kindUnknown); got != 2 {
		t.Fatalf("unknown count = %d, want 2 (clamped events)", got)
	}
	if got := tr.Count(TxData); got != 1 {
		t.Fatalf("tx-data count = %d, want 1 (clamp must not bleed into neighbours)", got)
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Kind != kindUnknown || evs[1].Kind != kindUnknown {
		t.Fatalf("events = %+v", evs)
	}
	if s := tr.Summary(); !strings.Contains(s, "unknown") {
		t.Errorf("summary hides clamped events:\n%s", s)
	}
}

func TestSamplerStop(t *testing.T) {
	e := sim.NewEnv(1)
	e.Go("driver", func(p *sim.Proc) { p.Sleep(2000) })
	// dur = 0: open-ended sampler. Its daemon ticks must not keep the
	// event queue alive once the driver finishes, and Stop must freeze
	// the series immediately.
	s := NewSampler(e, 100, 0, func() float64 { return 1 })
	e.At(450, func() { s.Stop() })
	e.Run()
	if n := len(s.S.Values); n != 4 {
		t.Fatalf("samples after Stop = %d, want 4 (ticks at 100..400)", n)
	}
	s.Stop() // idempotent
	var nilS *Sampler
	nilS.Stop() // nil-safe
}

func TestSamplerOpenEndedDoesNotLeak(t *testing.T) {
	e := sim.NewEnv(1)
	e.Go("driver", func(p *sim.Proc) { p.Sleep(1000) })
	s := NewSampler(e, 100, 0, func() float64 { return 1 })
	end := e.Run()
	if end > 1000 {
		t.Fatalf("run ended at %v: open-ended sampler kept the queue alive", end)
	}
	if n := len(s.S.Values); n < 8 || n > 11 {
		t.Fatalf("samples = %d, want ~10 (ticks while the driver ran)", n)
	}
}
