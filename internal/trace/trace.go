// Package trace provides the frame-level tracing and time-series
// sampling behind the paper's network-traffic analysis (IPPS'07
// contribution (iii): "detailed analysis of edge-based protocols ...
// network traffic"). A Trace records per-frame protocol events into a
// bounded ring; a Sampler turns any instantaneous metric into a time
// series. Both render as text.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"multiedge/internal/sim"
)

// Kind classifies a protocol event.
type Kind uint8

// Protocol event kinds.
const (
	kindUnknown Kind = iota // clamp target for out-of-range kinds
	TxData
	TxRetransmit
	TxAck
	TxNack
	RxData
	RxDuplicate
	RxOutOfOrder
	RxHeld      // buffered awaiting ordering or fences
	LinkDead    // sender declared a link dead (seq field = link index)
	LinkRestore // sender re-admitted a dead link (seq field = link index)
	PeerDead    // conn transitioned to Failed: retry budget or liveness exhausted
	kindCount
)

var kindNames = [kindCount]string{
	kindUnknown: "unknown",
	TxData:      "tx-data", TxRetransmit: "tx-retrans", TxAck: "tx-ack",
	TxNack: "tx-nack", RxData: "rx-data", RxDuplicate: "rx-dup",
	RxOutOfOrder: "rx-ooo", RxHeld: "rx-held",
	LinkDead: "link-dead", LinkRestore: "link-restore",
	PeerDead: "peer-dead",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one protocol event.
type Event struct {
	At   sim.Time
	Node int
	Conn uint32
	Kind Kind
	Seq  uint32
	Len  int
}

// Trace is a bounded ring of events. The zero value is unusable; create
// with New.
type Trace struct {
	env     *sim.Env
	events  []Event
	next    int
	wrapped bool
	counts  [kindCount]uint64
	bytes   [kindCount]uint64
	first   sim.Time
	last    sim.Time
}

// New creates a trace retaining up to cap events (older events fall off
// but the aggregate counters keep counting).
func New(env *sim.Env, cap int) *Trace {
	if cap <= 0 {
		cap = 1 << 14
	}
	return &Trace{env: env, events: make([]Event, cap), first: -1}
}

// Add records one event. An out-of-range kind is clamped to the unknown
// slot (0) rather than corrupting a neighbouring counter or panicking:
// traces may be fed by future frame kinds the build does not know.
func (t *Trace) Add(node int, conn uint32, kind Kind, seq uint32, n int) {
	if kind >= kindCount {
		kind = kindUnknown
	}
	at := t.env.Now()
	if t.first < 0 {
		t.first = at
	}
	t.last = at
	t.counts[kind]++
	t.bytes[kind] += uint64(n)
	t.events[t.next] = Event{At: at, Node: node, Conn: conn, Kind: kind, Seq: seq, Len: n}
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.wrapped = true
	}
}

// Count returns the total number of events of a kind (including ones
// that fell off the ring).
func (t *Trace) Count(k Kind) uint64 { return t.counts[k] }

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	if !t.wrapped {
		return append([]Event(nil), t.events[:t.next]...)
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Summary renders aggregate counters.
func (t *Trace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %v .. %v\n", t.first, t.last)
	for k := Kind(0); k < kindCount; k++ {
		if t.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-11s %8d events %12d bytes\n", k, t.counts[k], t.bytes[k])
	}
	return b.String()
}

// Timeline renders retained events bucketed by the given interval: one
// row per bucket with per-kind counts — a text version of the paper's
// traffic-over-time analysis.
func (t *Trace) Timeline(bucket sim.Time) string {
	evs := t.Events()
	if len(evs) == 0 {
		return "trace: no events\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "t")
	for k := Kind(1); k < kindCount; k++ {
		fmt.Fprintf(&b, "%11s", k)
	}
	fmt.Fprintln(&b)
	start := evs[0].At / bucket * bucket
	var row [kindCount]int
	flush := func(at sim.Time) {
		fmt.Fprintf(&b, "%12v", at)
		for k := Kind(1); k < kindCount; k++ {
			fmt.Fprintf(&b, "%11d", row[k])
		}
		fmt.Fprintln(&b)
		row = [kindCount]int{}
	}
	cur := start
	for _, ev := range evs {
		for ev.At >= cur+bucket {
			flush(cur)
			cur += bucket
		}
		row[ev.Kind]++
	}
	flush(cur)
	return b.String()
}

// Series is a sampled time series.
type Series struct {
	Times  []sim.Time
	Values []float64
}

// Sampler periodically evaluates a metric while the simulation runs.
type Sampler struct {
	S *Series

	stopped bool
	timer   *sim.Timer
}

// NewSampler samples f every interval for the given duration (0 = until
// Stop is called or the simulation's live work drains). Ticks are
// daemon events, so an open-ended sampler never keeps the event queue
// alive on its own.
func NewSampler(env *sim.Env, every, dur sim.Time, f func() float64) *Sampler {
	s := &Sampler{S: &Series{}}
	stop := env.Now() + dur
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.S.Times = append(s.S.Times, env.Now())
		s.S.Values = append(s.S.Values, f())
		if dur > 0 && env.Now() >= stop {
			return
		}
		s.timer = env.AfterDaemon(every, tick)
	}
	s.timer = env.AfterDaemon(every, tick)
	return s
}

// Stop halts the sampler and cancels its pending tick so the series
// stops growing. Nil-safe and idempotent.
func (s *Sampler) Stop() {
	if s == nil || s.stopped {
		return
	}
	s.stopped = true
	s.timer.Stop()
}

// Stats returns min, max and mean of the series.
func (s *Series) Stats() (min, max, mean float64) {
	if len(s.Values) == 0 {
		return 0, 0, 0
	}
	min, max = s.Values[0], s.Values[0]
	var sum float64
	for _, v := range s.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, max, sum / float64(len(s.Values))
}

// Render draws the series as a fixed-height text chart.
func (s *Series) Render(width, height int) string {
	if len(s.Values) == 0 {
		return "(empty series)\n"
	}
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 8
	}
	min, max, mean := s.Stats()
	span := max - min
	if span == 0 {
		span = 1
	}
	// Downsample to width columns by averaging.
	cols := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(s.Values) / width
		hi := (c + 1) * len(s.Values) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for i := lo; i < hi && i < len(s.Values); i++ {
			sum += s.Values[i]
		}
		cols[c] = sum / float64(hi-lo)
	}
	var b strings.Builder
	for r := height - 1; r >= 0; r-- {
		thresh := min + span*float64(r)/float64(height)
		for _, v := range cols {
			if v > thresh {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "min %.3g  max %.3g  mean %.3g  samples %d\n", min, max, mean, len(s.Values))
	return b.String()
}

// LatencyRecorder collects operation latency samples and reports exact
// percentiles (the samples are sorted on demand; with deterministic
// simulation the distribution itself is reproducible bit-for-bit).
// Useful where a mean hides the story: NACK-repair tails, multi-rail
// jitter.
type LatencyRecorder struct {
	samples []sim.Time
	sorted  bool
}

// Record adds one sample.
func (l *LatencyRecorder) Record(d sim.Time) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns how many samples were recorded.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method; zero with no samples.
func (l *LatencyRecorder) Percentile(p float64) sim.Time {
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	if p <= 0 {
		return l.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return l.samples[rank-1]
}

// Mean returns the arithmetic mean of the samples.
func (l *LatencyRecorder) Mean() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range l.samples {
		sum += s
	}
	return sum / sim.Time(len(l.samples))
}
