package apps

import (
	"fmt"
	"math"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// WaterSpatial is the SPLASH-2 Water-Spatial application: the same
// molecular dynamics as Water-Nsquared but with an O(n) cell-list
// algorithm. The box is divided into c^3 cells (cell edge >= cutoff);
// cell planes are assigned to nodes in contiguous x-axis slabs so each
// node communicates only with slab neighbours — the paper's "medium
// speedup" category.
//
// The FL variant (the paper's Water-SpatialFL) exploits Newton's third
// law: each pair is computed exactly once, by the molecule with the
// higher (cell, slot) order; reaction forces destined for the lower
// neighbour slab are accumulated into a shared ghost array under a
// per-plane lock. Less pair computation, more fine-grained lock and
// accumulation traffic — the paper reports nearly identical overall
// performance for the two variants.
type WaterSpatial struct {
	fl       bool
	n, steps int
	c        int // cells per dimension
	cap      int // molecule slots per cell
	dt       float64
	box      float64

	cellPos uint64 // shared: per cell, cap molecules x 24 B
	ghost   uint64 // FL only: reaction-force slots, same layout
	pe      uint64
	vel     []vec3 // indexed cell*cap+slot
	counts  []int  // molecules per cell (fixed: no migration in short runs)
	initPos []vec3 // cell*cap+slot -> initial position

	cPair sim.Time
}

const (
	wsPeLock   = 19
	wsLockBase = 20 // per-plane ghost locks: wsLockBase + plane
)

// NewWaterSpatial sizes the simulation: n molecules in a c^3 cell grid.
func NewWaterSpatial(n, c, steps int, fl bool) *WaterSpatial {
	w := &WaterSpatial{
		fl: fl, n: n, steps: steps, c: c, cap: 2*(n/(c*c*c)) + 4,
		dt: 5e-5, box: 1.0,
		// The FL variant evaluates each pair once (Newton's third law)
		// but does roughly twice the work per evaluated pair, so the
		// two variants have near-identical sequential times — exactly
		// the relationship in the paper's Table 1.
		cPair: 1500 * sim.Nanosecond,
	}
	if fl {
		w.cPair = 3000 * sim.Nanosecond
	}
	w.vel = make([]vec3, c*c*c*w.cap)
	return w
}

func (w *WaterSpatial) cellIndex(x, y, z int) int { return (x*w.c+y)*w.c + z }

// Name implements App.
func (w *WaterSpatial) Name() string {
	if w.fl {
		return "Water-SpatialFL"
	}
	return "Water-Spatial"
}

// SharedBytes implements App.
func (w *WaterSpatial) SharedBytes() int {
	cells := w.c * w.c * w.c
	b := 24*w.cap*cells + 8*dsm.PageSize
	if w.fl {
		b += 24*w.cap*cells + dsm.PageSize
	}
	return b
}

// Init places molecules round-robin across cells, jittered around cell
// centers so they stay in their cells during the short runs.
func (w *WaterSpatial) Init(sys *dsm.System) {
	c := w.c
	cells := c * c * c
	// Cell planes are contiguous in memory, so AllocOwned's contiguous
	// page shares align homes with the slab owners.
	w.cellPos = sys.AllocOwned(24 * w.cap * cells)
	w.pe = sys.AllocPages(8)
	if w.fl {
		w.ghost = sys.AllocOwned(24 * w.cap * cells)
	}
	r := newRng(0x3A7E5)
	w.counts = make([]int, cells)
	w.initPos = make([]vec3, cells*w.cap)
	posBuf := make([]byte, 24*w.cap*cells)
	edge := w.box / float64(c)
	for i := 0; i < w.n; i++ {
		cell := i % cells
		slot := w.counts[cell]
		if slot >= w.cap {
			panic("apps: water-spatial cell overflow")
		}
		w.counts[cell]++
		cx, cy, cz := cell/(c*c), (cell/c)%c, cell%c
		p := vec3{
			(float64(cx) + 0.5 + 0.6*(r.float()-0.5)) * edge,
			(float64(cy) + 0.5 + 0.6*(r.float()-0.5)) * edge,
			(float64(cz) + 0.5 + 0.6*(r.float()-0.5)) * edge,
		}
		k := cell*w.cap + slot
		w.initPos[k] = p
		dsm.SetF64(posBuf, 3*k+0, p.x)
		dsm.SetF64(posBuf, 3*k+1, p.y)
		dsm.SetF64(posBuf, 3*k+2, p.z)
	}
	sys.WriteShared(w.cellPos, posBuf)
	sys.WriteShared(w.pe, make([]byte, 8))
	if w.fl {
		sys.WriteShared(w.ghost, make([]byte, 24*w.cap*cells))
	}
}

// Node implements App.
func (w *WaterSpatial) Node(p *sim.Proc, in *dsm.Instance) {
	me := in.Node()
	nn := in.N()
	xlo, xhi := splitRange(w.c, me, nn)
	c := w.c
	cutoff2 := (w.box / float64(c)) * (w.box / float64(c))
	soft2 := 0.04 * cutoff2
	planeBytes := 24 * w.cap * c * c
	planeSlots := w.cap * c * c
	for s := 0; s < w.steps; s++ {
		if xhi <= xlo {
			// No planes owned: participate in the step's barriers only.
			in.Barrier(p)
			in.Barrier(p)
			continue
		}
		// Read own slab plus one neighbour plane on each side.
		rlo, rhi := xlo-1, xhi+1
		if rlo < 0 {
			rlo = 0
		}
		if rhi > c {
			rhi = c
		}
		raw := in.RSlice(p, w.cellPos+uint64(rlo*planeBytes), (rhi-rlo)*planeBytes)
		readPos := func(cell, slot int) vec3 {
			k := (cell*w.cap + slot) - rlo*planeSlots
			return vec3{dsm.F64(raw, 3*k), dsm.F64(raw, 3*k+1), dsm.F64(raw, 3*k+2)}
		}
		acc := make([]vec3, (xhi-xlo)*planeSlots) // own slots only
		ownIdx := func(cell, slot int) int { return cell*w.cap + slot - xlo*planeSlots }
		var ghostAcc []vec3 // FL: reactions for plane xlo-1
		if w.fl && xlo > 0 {
			ghostAcc = make([]vec3, planeSlots)
		}
		var pe float64
		pairs := 0
		for x := xlo; x < xhi; x++ {
			for y := 0; y < c; y++ {
				for z := 0; z < c; z++ {
					ci := w.cellIndex(x, y, z)
					for si := 0; si < w.counts[ci]; si++ {
						pi := readPos(ci, si)
						for dx := -1; dx <= 1; dx++ {
							nx := x + dx
							if nx < 0 || nx >= c {
								continue
							}
							for dy := -1; dy <= 1; dy++ {
								ny := y + dy
								if ny < 0 || ny >= c {
									continue
								}
								for dz := -1; dz <= 1; dz++ {
									nz := z + dz
									if nz < 0 || nz >= c {
										continue
									}
									cj := w.cellIndex(nx, ny, nz)
									for sj := 0; sj < w.counts[cj]; sj++ {
										if cj == ci && sj == si {
											continue
										}
										if w.fl && (cj > ci || (cj == ci && sj > si)) {
											continue // the higher-ordered molecule computes the pair
										}
										pj := readPos(cj, sj)
										d := pi.sub(pj)
										if d.norm2() > cutoff2 {
											continue
										}
										f, e := ljForce(pi, pj, soft2)
										acc[ownIdx(ci, si)] = acc[ownIdx(ci, si)].add(f)
										pairs++
										if w.fl {
											pe += e
											if nx >= xlo {
												acc[ownIdx(cj, sj)] = acc[ownIdx(cj, sj)].sub(f)
											} else {
												ghostAcc[cj*w.cap+sj-(xlo-1)*planeSlots] =
													ghostAcc[cj*w.cap+sj-(xlo-1)*planeSlots].sub(f)
											}
										} else {
											pe += e / 2 // the partner's owner adds the other half
										}
									}
								}
							}
						}
					}
				}
			}
		}
		in.Compute(p, sim.Time(pairs)*w.cPair)
		if !w.fl {
			// Positions are updated in place below; no node may start
			// integrating until every node has read the neighbour
			// planes it needs (the FL variant's ghost barrier already
			// provides this separation).
			in.Barrier(p)
		}
		if w.fl {
			// Publish reaction forces for the lower neighbour plane
			// under that plane's lock, then synchronize and fold in the
			// reactions the upper neighbour left for us.
			if xlo > 0 {
				in.Acquire(p, wsLockBase+xlo-1)
				gb := in.WSlice(p, w.ghost+uint64((xlo-1)*planeBytes), planeBytes)
				for k, g := range ghostAcc {
					if g == (vec3{}) {
						continue
					}
					dsm.SetF64(gb, 3*k+0, dsm.F64(gb, 3*k+0)+g.x)
					dsm.SetF64(gb, 3*k+1, dsm.F64(gb, 3*k+1)+g.y)
					dsm.SetF64(gb, 3*k+2, dsm.F64(gb, 3*k+2)+g.z)
				}
				in.Release(p, wsLockBase+xlo-1)
			}
			in.Barrier(p)
			gb := in.RSlice(p, w.ghost+uint64(xlo*planeBytes), (xhi-xlo)*planeBytes)
			for k := 0; k < (xhi-xlo)*planeSlots; k++ {
				g := vec3{dsm.F64(gb, 3*k), dsm.F64(gb, 3*k+1), dsm.F64(gb, 3*k+2)}
				acc[k] = acc[k].add(g)
			}
			// Zero our ghost region for the next step; the reset
			// propagates with this node's next barrier notices.
			wb := in.WSlice(p, w.ghost+uint64(xlo*planeBytes), (xhi-xlo)*planeBytes)
			for i := range wb {
				wb[i] = 0
			}
		}
		// Potential-energy reduction under the global lock.
		in.Acquire(p, wsPeLock)
		eb := in.WSlice(p, w.pe, 8)
		dsm.SetF64(eb, 0, dsm.F64(eb, 0)+pe)
		in.Release(p, wsPeLock)
		// Integrate own slab.
		out := in.WSlice(p, w.cellPos+uint64(xlo*planeBytes), (xhi-xlo)*planeBytes)
		for x := xlo; x < xhi; x++ {
			for y := 0; y < c; y++ {
				for z := 0; z < c; z++ {
					ci := w.cellIndex(x, y, z)
					for si := 0; si < w.counts[ci]; si++ {
						g := ci*w.cap + si
						w.vel[g] = w.vel[g].add(acc[ownIdx(ci, si)].scale(w.dt))
						pp := readPos(ci, si).add(w.vel[g].scale(w.dt))
						k := g - xlo*planeSlots
						dsm.SetF64(out, 3*k+0, pp.x)
						dsm.SetF64(out, 3*k+1, pp.y)
						dsm.SetF64(out, 3*k+2, pp.z)
					}
				}
			}
		}
		in.Barrier(p)
	}
}

// Verify replays the dynamics sequentially with the plain (recompute)
// pair rule and compares positions with a tolerance (the FL variant's
// force-summation order differs).
func (w *WaterSpatial) Verify(sys *dsm.System) string {
	c := w.c
	cells := c * c * c
	cutoff2 := (w.box / float64(c)) * (w.box / float64(c))
	soft2 := 0.04 * cutoff2
	pos := append([]vec3(nil), w.initPos...)
	vel := make([]vec3, cells*w.cap)
	for s := 0; s < w.steps; s++ {
		acc := make([]vec3, cells*w.cap)
		for x := 0; x < c; x++ {
			for y := 0; y < c; y++ {
				for z := 0; z < c; z++ {
					ci := w.cellIndex(x, y, z)
					for si := 0; si < w.counts[ci]; si++ {
						for dx := -1; dx <= 1; dx++ {
							nx := x + dx
							if nx < 0 || nx >= c {
								continue
							}
							for dy := -1; dy <= 1; dy++ {
								ny := y + dy
								if ny < 0 || ny >= c {
									continue
								}
								for dz := -1; dz <= 1; dz++ {
									nz := z + dz
									if nz < 0 || nz >= c {
										continue
									}
									cj := w.cellIndex(nx, ny, nz)
									for sj := 0; sj < w.counts[cj]; sj++ {
										if cj == ci && sj == si {
											continue
										}
										d := pos[ci*w.cap+si].sub(pos[cj*w.cap+sj])
										if d.norm2() > cutoff2 {
											continue
										}
										f, _ := ljForce(pos[ci*w.cap+si], pos[cj*w.cap+sj], soft2)
										acc[ci*w.cap+si] = acc[ci*w.cap+si].add(f)
									}
								}
							}
						}
					}
				}
			}
		}
		for g := range pos {
			vel[g] = vel[g].add(acc[g].scale(w.dt))
			pos[g] = pos[g].add(vel[g].scale(w.dt))
		}
	}
	out := sys.ReadShared(w.cellPos, 24*w.cap*cells)
	for cell := 0; cell < cells; cell++ {
		for s := 0; s < w.counts[cell]; s++ {
			k := cell*w.cap + s
			got := vec3{dsm.F64(out, 3*k), dsm.F64(out, 3*k+1), dsm.F64(out, 3*k+2)}
			want := pos[k]
			scale := 1 + math.Abs(want.x) + math.Abs(want.y) + math.Abs(want.z)
			if d := got.sub(want); math.Abs(d.x)+math.Abs(d.y)+math.Abs(d.z) > 1e-7*scale {
				return fmt.Sprintf("%s: cell %d slot %d at %+v, want %+v", w.Name(), cell, s, got, want)
			}
		}
	}
	return ""
}
