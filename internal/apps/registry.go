package apps

import (
	"fmt"
)

// Size selects a problem scale for the registry constructors.
type Size int

// Problem scales: Test sizes keep unit tests fast; Small is the default
// evaluation scale (EXPERIMENTS.md documents the mapping to the paper's
// Table 1 sizes); Full is the largest scale that still simulates in
// reasonable wall time.
const (
	SizeTest Size = iota
	SizeSmall
	SizeFull
)

// Names lists the Table-1 applications in the paper's order.
var Names = []string{
	"Barnes", "FFT", "LU", "Radix", "Raytrace",
	"Water-Nsquared", "Water-Spatial", "Water-SpatialFL",
}

// Build constructs the named application at the given scale for a
// cluster with `nodes` nodes. Shared data is allocated later, by Init.
func Build(name string, size Size, nodes int) App {
	switch name {
	case "Barnes":
		switch size {
		case SizeTest:
			return NewBarnes(256, 2)
		case SizeFull:
			return NewBarnes(8192, 3)
		default:
			return NewBarnes(4096, 3)
		}
	case "FFT":
		switch size {
		case SizeTest:
			return NewFFT(8)
		case SizeFull:
			return NewFFT(20)
		default:
			return NewFFT(18)
		}
	case "LU":
		switch size {
		case SizeTest:
			return NewLU(128, 16, nodes)
		case SizeFull:
			return NewLU(768, 32, nodes)
		default:
			return NewLU(512, 32, nodes)
		}
	case "Radix":
		switch size {
		case SizeTest:
			return NewRadix(4096, nodes)
		case SizeFull:
			return NewRadix(1<<19, nodes)
		default:
			return NewRadix(1<<18, nodes)
		}
	case "Raytrace":
		switch size {
		case SizeTest:
			return NewRaytrace(64, 64, 8)
		case SizeFull:
			return NewRaytrace(384, 384, 48)
		default:
			return NewRaytrace(256, 256, 32)
		}
	case "Water-Nsquared":
		switch size {
		case SizeTest:
			return NewWaterNsq(96, 2, nodes)
		case SizeFull:
			return NewWaterNsq(1600, 2, nodes)
		default:
			return NewWaterNsq(1024, 2, nodes)
		}
	case "Water-Spatial":
		switch size {
		case SizeTest:
			return NewWaterSpatial(512, 8, 2, false)
		case SizeFull:
			return NewWaterSpatial(24576, 16, 2, false)
		default:
			return NewWaterSpatial(12288, 16, 2, false)
		}
	case "Water-SpatialFL":
		switch size {
		case SizeTest:
			return NewWaterSpatial(512, 8, 2, true)
		case SizeFull:
			return NewWaterSpatial(24576, 16, 2, true)
		default:
			return NewWaterSpatial(12288, 16, 2, true)
		}
	}
	panic(fmt.Sprintf("apps: unknown application %q", name))
}
