package apps

import (
	"fmt"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// runWithLinkFault replicates Run's harness but injects hard link
// faults on node 1's rail 1 while the application executes: pulled at
// failAt, re-plugged at repairAt (never, if 0). The application must
// still produce the correct answer — the DSM sits on MultiEdge's
// reliable operations, so a dying rail may only cost time.
func runWithLinkFault(t *testing.T, name string, nodes int, failAt, repairAt sim.Time) {
	t.Helper()
	cfg := cluster.TwoLinkUnordered1G(nodes)
	app := Build(name, SizeTest, nodes)
	shared := app.SharedBytes()
	if shared%dsm.PageSize != 0 {
		shared += dsm.PageSize - shared%dsm.PageSize
	}
	cfg.Core.MemBytes = shared + shared/2 + (8 << 20)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	sys := dsm.New(cl, conns, dsm.Config{SharedBytes: shared})
	app.Init(sys)

	cl.Env.At(failAt, func() { cl.FailLink(1, 1) })
	if repairAt > 0 {
		cl.Env.At(repairAt, func() { cl.RestoreLink(1, 1) })
	}

	done := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("%s-%d", app.Name(), in.Node()), func(p *sim.Proc) {
			app.Node(p, in)
			done++
		})
	}
	cl.Env.Run()
	if done != len(sys.Insts) {
		t.Fatalf("%s: finished on %d/%d nodes (stalled on the dead rail?)", name, done, nodes)
	}
	if msg := app.Verify(sys); msg != "" {
		t.Fatalf("%s with rail fault: %s", name, msg)
	}
	if drops := cl.Collect().LinkFailDrops; drops == 0 {
		t.Fatalf("%s: the fault never bit (0 frames lost); adjust failAt", name)
	}
}

// TestAppsSurviveLinkFailure runs a communication-bound and a
// synchronization-bound application with one rail of one node dead for
// most of the run.
func TestAppsSurviveLinkFailure(t *testing.T) {
	for _, name := range []string{"FFT", "Barnes"} {
		name := name
		t.Run(name, func(t *testing.T) {
			runWithLinkFault(t, name, 4, 500*sim.Microsecond, 0)
		})
	}
}

// TestAppsSurviveLinkFlap pulls and re-plugs the rail mid-run.
func TestAppsSurviveLinkFlap(t *testing.T) {
	runWithLinkFault(t, "Radix", 4, 500*sim.Microsecond, 5*sim.Millisecond)
}
