// Package apps implements the eight SPLASH-2 applications the paper
// runs on GeNIMA (IPPS'07 Table 1): Barnes(-Spatial), FFT, LU, Radix,
// Raytrace, Water-Nsquared, Water-Spatial and Water-SpatialFL.
//
// Each application performs its real computation on real shared data
// through the DSM (results are verified against sequential references in
// the tests) and charges calibrated virtual compute time per unit of
// work, so that the compute/communication regime — and therefore the
// speedup shape the paper reports — is preserved at the reduced problem
// sizes documented in EXPERIMENTS.md.
package apps

import (
	"fmt"

	"multiedge/internal/cluster"
	"multiedge/internal/dsm"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// App is one benchmark application instance, sized and with its shared
// data allocated. Build one with a New* constructor, initialize with
// Init, run with Run, and check with Verify.
type App interface {
	// Name returns the Table-1 application name.
	Name() string
	// Init seeds shared memory (out of band, like SPLASH-2's untimed
	// initialization phase).
	Init(sys *dsm.System)
	// Node is the per-node application body.
	Node(p *sim.Proc, in *dsm.Instance)
	// Verify checks the result against a sequential reference after the
	// run; it returns a description of the first mismatch, or "" if
	// correct.
	Verify(sys *dsm.System) string
	// SharedBytes reports how much shared memory the instance needs.
	SharedBytes() int
}

// Result summarizes one application run.
type Result struct {
	Name    string
	Config  string
	Nodes   int
	Elapsed sim.Time
	Bd      []dsm.Breakdown // per node
	DSM     dsm.Stats       // aggregated
	Net     cluster.NetReport
	// ProtoCPUFrac is the protocol CPU time (both CPUs' protocol
	// shares) as a fraction of nodes x elapsed.
	ProtoCPUFrac float64
	// Obs is the run's observability registry; nil unless the config's
	// ObsOptions enabled it.
	Obs *obs.Registry
}

// MeanBreakdown averages the per-node breakdowns.
func (r Result) MeanBreakdown() dsm.Breakdown {
	var b dsm.Breakdown
	for _, x := range r.Bd {
		b.Add(x)
	}
	n := sim.Time(len(r.Bd))
	if n == 0 {
		return b
	}
	return dsm.Breakdown{
		Compute: b.Compute / n, Data: b.Data / n, Lock: b.Lock / n,
		Barrier: b.Barrier / n, Overhead: b.Overhead / n,
	}
}

// Run executes the application on a freshly built DSM over the given
// cluster configuration and returns the measurement plus the DSM (so
// callers can run the application's Verify against it). The cluster's
// MemBytes is adjusted to fit the application automatically.
func Run(cfg cluster.Config, app App) (Result, *dsm.System) {
	shared := app.SharedBytes()
	if shared%dsm.PageSize != 0 {
		shared += dsm.PageSize - shared%dsm.PageSize
	}
	// Shared mirror + message areas + slack.
	cfg.Core.MemBytes = shared + shared/2 + (8 << 20)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	sys := dsm.New(cl, conns, dsm.Config{SharedBytes: shared})
	app.Init(sys)

	prev := cl.Collect()
	protoSnaps := make([]sim.Utilization, len(cl.Nodes))
	appSnaps := make([]sim.Utilization, len(cl.Nodes))
	for i, n := range cl.Nodes {
		protoSnaps[i] = n.CPUs.Proto.Snapshot(cl.Env)
		appSnaps[i] = n.CPUs.App.Snapshot(cl.Env)
	}
	start := cl.Env.Now()
	var end sim.Time
	done := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("%s-%d", app.Name(), in.Node()), func(p *sim.Proc) {
			app.Node(p, in)
			done++
			if t := cl.Env.Now(); t > end {
				end = t
			}
			if done == len(sys.Insts) {
				// Stop the obs samplers: Run() below is unbounded and
				// would otherwise never drain the re-arming tick events.
				cl.Obs.Quiesce()
			}
		})
	}
	cl.Env.Run()
	if done != len(sys.Insts) {
		panic(fmt.Sprintf("apps: %s finished on %d/%d nodes (deadlock?)", app.Name(), done, len(sys.Insts)))
	}
	r := Result{
		Name: app.Name(), Config: cfg.Name, Nodes: cfg.Nodes,
		Elapsed: end - start,
		Net:     cl.Collect().Sub(prev),
		Obs:     cl.Obs,
	}
	var protoTime sim.Time
	for i, in := range sys.Insts {
		r.Bd = append(r.Bd, in.B)
		r.DSM.Add(in.Stats)
		protoTime += cl.Nodes[i].CPUs.Proto.BusyTime() - protoSnaps[i].Busy
	}
	protoTime += r.Net.Proto.AppProtoTime
	if r.Elapsed > 0 {
		r.ProtoCPUFrac = float64(protoTime) / float64(int64(r.Elapsed)*int64(cfg.Nodes))
	}
	return r, sys
}

// Speedup computes t1/tp.
func Speedup(seq, par sim.Time) float64 {
	if par <= 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// splitRange divides [0, n) into nearly equal chunks and returns the
// half-open slice owned by node `id` of `of`.
func splitRange(n, id, of int) (lo, hi int) {
	base := n / of
	rem := n % of
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rng is a small deterministic generator for app data (xorshift64),
// independent of math/rand so application inputs never perturb the
// simulator's random stream.
type rng uint64

func newRng(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
