package apps

import (
	"fmt"
	"math"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// Raytrace is the SPLASH-2 ray tracer on the paper's "balls" scene:
// reflective spheres over a plane, rendered tile by tile. Tiles are
// claimed from a shared work counter under a lock (the task-queue
// traffic), pixels land in a shared image. Rays are embarrassingly
// parallel and compute-heavy, so Raytrace sits in the paper's
// well-scaling category.
type Raytrace struct {
	w, h    int
	spheres []sphere // read-only scene, replicated at init
	img     uint64   // shared: one float64 intensity per pixel
	next    uint64   // shared tile counter
	tile    int

	cTest sim.Time // per ray-object intersection test
	cPix  sim.Time // fixed per-pixel shading cost
}

type sphere struct {
	c    vec3
	r    float64
	refl float64 // reflectivity 0..1
}

const rtLock = 11 // lock id protecting the tile counter

// NewRaytrace sizes the renderer.
func NewRaytrace(w, h, balls int) *Raytrace {
	rt := &Raytrace{
		w: w, h: h, tile: 32,
		cTest: 60 * sim.Nanosecond,
		cPix:  9 * sim.Microsecond,
	}
	r := newRng(0xBA11)
	for i := 0; i < balls; i++ {
		rt.spheres = append(rt.spheres, sphere{
			c:    vec3{r.float()*4 - 2, r.float()*1.5 + 0.3, r.float()*4 - 2},
			r:    0.15 + r.float()*0.35,
			refl: 0.3 + r.float()*0.5,
		})
	}
	return rt
}

// Name implements App.
func (rt *Raytrace) Name() string { return "Raytrace" }

// SharedBytes implements App.
func (rt *Raytrace) SharedBytes() int { return 8*rt.w*rt.h + 4*dsm.PageSize }

// Init allocates the image and tile counter.
func (rt *Raytrace) Init(sys *dsm.System) {
	rt.img = sys.AllocOwned(8 * rt.w * rt.h)
	rt.next = sys.AllocPages(8)
	sys.WriteShared(rt.next, make([]byte, 8))
}

// Node implements App. Tiles are claimed in interleaved static order —
// SPLASH-2's distributed queues degenerate to this when tiles are
// uniform and stealing is rare — and each node updates the shared
// progress counter under the queue lock as it finishes a tile, so the
// task-queue lock traffic is still present without serializing renders.
func (rt *Raytrace) Node(p *sim.Proc, in *dsm.Instance) {
	tilesX := (rt.w + rt.tile - 1) / rt.tile
	tilesY := (rt.h + rt.tile - 1) / rt.tile
	total := tilesX * tilesY
	for t := in.Node(); t < total; t += in.N() {
		rt.renderTile(p, in, t%tilesX*rt.tile, t/tilesX*rt.tile)
		in.Acquire(p, rtLock)
		cb := in.WSlice(p, rt.next, 8)
		dsm.SetU64(cb, 0, dsm.U64(cb, 0)+1)
		in.Release(p, rtLock)
	}
	in.Barrier(p)
}

func (rt *Raytrace) renderTile(p *sim.Proc, in *dsm.Instance, x0, y0 int) {
	tests := 0
	pixels := 0
	for y := y0; y < y0+rt.tile && y < rt.h; y++ {
		rowAddr := rt.img + uint64(8*(y*rt.w+x0))
		n := rt.tile
		if x0+n > rt.w {
			n = rt.w - x0
		}
		row := in.WSlice(p, rowAddr, 8*n)
		for x := x0; x < x0+n; x++ {
			v, t := rt.tracePixel(x, y)
			dsm.SetF64(row, x-x0, v)
			tests += t
			pixels++
		}
	}
	in.Compute(p, sim.Time(tests)*rt.cTest+sim.Time(pixels)*rt.cPix)
}

// tracePixel shoots the primary ray for pixel (x, y) and returns the
// intensity and the number of intersection tests performed.
func (rt *Raytrace) tracePixel(x, y int) (float64, int) {
	origin := vec3{0, 1.2, -4}
	u := (float64(x)+0.5)/float64(rt.w)*2 - 1
	v := 1 - (float64(y)+0.5)/float64(rt.h)*2
	dir := normalize(vec3{u * 1.2, v * 1.2, 1.8})
	return rt.trace(origin, dir, 2)
}

var rtLight = normalize(vec3{-0.5, 1, -0.6})

func normalize(v vec3) vec3 {
	inv := 1 / math.Sqrt(v.norm2())
	return v.scale(inv)
}

func dot(a, b vec3) float64 { return a.x*b.x + a.y*b.y + a.z*b.z }

// intersect finds the nearest hit: object index (-1 plane, -2 none).
func (rt *Raytrace) intersect(o, d vec3) (obj int, tHit float64, tests int) {
	obj, tHit = -2, math.Inf(1)
	// Ground plane y = 0.
	tests++
	if d.y < -1e-9 {
		if t := -o.y / d.y; t > 1e-6 && t < tHit {
			obj, tHit = -1, t
		}
	}
	for i, s := range rt.spheres {
		tests++
		oc := o.sub(s.c)
		b := dot(oc, d)
		c := oc.norm2() - s.r*s.r
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t := -b - sq
		if t <= 1e-6 {
			t = -b + sq
		}
		if t > 1e-6 && t < tHit {
			obj, tHit = i, t
		}
	}
	return obj, tHit, tests
}

// trace returns intensity for a ray with the given remaining bounces.
func (rt *Raytrace) trace(o, d vec3, depth int) (float64, int) {
	obj, t, tests := rt.intersect(o, d)
	if obj == -2 {
		return 0.12, tests // sky
	}
	hit := o.add(d.scale(t))
	var nrm vec3
	var base, refl float64
	if obj == -1 {
		nrm = vec3{0, 1, 0}
		// Checkerboard.
		if (int(math.Floor(hit.x))+int(math.Floor(hit.z)))%2 == 0 {
			base = 0.85
		} else {
			base = 0.25
		}
		refl = 0.15
	} else {
		s := rt.spheres[obj]
		nrm = normalize(hit.sub(s.c))
		base = 0.7
		refl = s.refl
	}
	// Lambertian with a shadow ray.
	diff := dot(nrm, rtLight)
	if diff < 0 {
		diff = 0
	} else {
		sObj, _, sTests := rt.intersect(hit.add(nrm.scale(1e-4)), rtLight)
		tests += sTests
		if sObj != -2 {
			diff *= 0.15 // in shadow
		}
	}
	val := base * (0.15 + 0.85*diff)
	if depth > 0 && refl > 0 {
		rd := d.sub(nrm.scale(2 * dot(d, nrm)))
		rv, rTests := rt.trace(hit.add(nrm.scale(1e-4)), rd, depth-1)
		tests += rTests
		val = val*(1-refl) + rv*refl
	}
	return val, tests
}

// Verify renders the image sequentially and requires bit-identical
// pixels (each pixel's computation is independent and deterministic).
func (rt *Raytrace) Verify(sys *dsm.System) string {
	out := sys.ReadShared(rt.img, 8*rt.w*rt.h)
	for y := 0; y < rt.h; y++ {
		for x := 0; x < rt.w; x++ {
			want, _ := rt.tracePixel(x, y)
			if got := dsm.F64(out, y*rt.w+x); got != want {
				return fmt.Sprintf("Raytrace: pixel (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	return ""
}
