package apps

import (
	"fmt"
	"math"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// LU is the SPLASH-2 blocked dense LU factorization (without pivoting):
// an n x n matrix of float64 split into bs x bs blocks, 2D-scattered
// over a processor grid. Each step factorizes the diagonal block,
// updates the perimeter, then the interior, with barriers between
// phases — the paper's "medium speedup" category (IPPS'07 §4.1).
type LU struct {
	n, bs, nb int
	pr, pc    int // processor grid
	nodes     int
	blocks    []uint64 // block (I,J) at blocks[I*nb+J], block-major storage
	orig      []float64

	cFlop sim.Time // per fused multiply-add
}

// NewLU sizes the kernel (n divisible by bs) for the given node count.
func NewLU(n, bs, nodes int) *LU {
	if n%bs != 0 {
		panic("apps: LU n must be divisible by bs")
	}
	l := &LU{
		n: n, bs: bs, nb: n / bs, nodes: nodes,
		cFlop: 8 * sim.Nanosecond,
	}
	// Near-square processor grid with pr*pc == nodes.
	l.pr = int(math.Sqrt(float64(nodes)))
	for nodes%l.pr != 0 {
		l.pr--
	}
	l.pc = nodes / l.pr
	return l
}

// owner implements the SPLASH-2 2D scatter ("cookie cutter") block
// assignment.
func (l *LU) owner(i, j int) int { return (i%l.pr)*l.pc + (j % l.pc) }

// Name implements App.
func (l *LU) Name() string { return "LU" }

// SharedBytes implements App.
func (l *LU) SharedBytes() int {
	per := (8*l.bs*l.bs + dsm.PageSize - 1) &^ (dsm.PageSize - 1)
	return l.nb*l.nb*per + 4*dsm.PageSize
}

// Init allocates every block at its owner and fills the matrix with a
// random diagonally dominant system.
func (l *LU) Init(sys *dsm.System) {
	l.blocks = make([]uint64, l.nb*l.nb)
	for i := 0; i < l.nb; i++ {
		for j := 0; j < l.nb; j++ {
			l.blocks[i*l.nb+j] = sys.AllocAt(8*l.bs*l.bs, l.owner(i, j))
		}
	}
	r := newRng(0x10)
	l.orig = make([]float64, l.n*l.n)
	for i := range l.orig {
		l.orig[i] = r.float()
	}
	for i := 0; i < l.n; i++ {
		l.orig[i*l.n+i] += float64(l.n)
	}
	buf := make([]byte, 8*l.bs*l.bs)
	for bi := 0; bi < l.nb; bi++ {
		for bj := 0; bj < l.nb; bj++ {
			for x := 0; x < l.bs; x++ {
				for y := 0; y < l.bs; y++ {
					dsm.SetF64(buf, x*l.bs+y, l.orig[(bi*l.bs+x)*l.n+bj*l.bs+y])
				}
			}
			sys.WriteShared(l.blocks[bi*l.nb+bj], buf)
		}
	}
}

func blockF64(b []byte, bs, x, y int) float64       { return dsm.F64(b, x*bs+y) }
func setBlockF64(b []byte, bs, x, y int, v float64) { dsm.SetF64(b, x*bs+y, v) }

// Node implements App: the owner-computes factorization loop.
func (l *LU) Node(p *sim.Proc, in *dsm.Instance) {
	me := in.Node()
	bs := l.bs
	bb := 8 * bs * bs
	for k := 0; k < l.nb; k++ {
		// Phase 1: factorize diagonal block (k,k).
		if l.owner(k, k) == me {
			d := in.WSlice(p, l.blocks[k*l.nb+k], bb)
			for x := 0; x < bs; x++ {
				piv := 1.0 / blockF64(d, bs, x, x)
				for y := x + 1; y < bs; y++ {
					setBlockF64(d, bs, y, x, blockF64(d, bs, y, x)*piv)
				}
				for y := x + 1; y < bs; y++ {
					lyx := blockF64(d, bs, y, x)
					for z := x + 1; z < bs; z++ {
						setBlockF64(d, bs, y, z, blockF64(d, bs, y, z)-lyx*blockF64(d, bs, x, z))
					}
				}
			}
			in.Compute(p, sim.Time(bs*bs*bs/3)*l.cFlop)
		}
		in.Barrier(p)
		// Phase 2: perimeter updates using the diagonal block.
		var diag []byte
		needDiag := false
		for t := k + 1; t < l.nb; t++ {
			if l.owner(k, t) == me || l.owner(t, k) == me {
				needDiag = true
			}
		}
		if needDiag {
			diag = in.RSlice(p, l.blocks[k*l.nb+k], bb)
		}
		for t := k + 1; t < l.nb; t++ {
			if l.owner(k, t) == me { // U row block: solve L(k,k) * X = A(k,t)
				u := in.WSlice(p, l.blocks[k*l.nb+t], bb)
				for x := 1; x < bs; x++ {
					for z := 0; z < x; z++ {
						lxz := blockF64(diag, bs, x, z)
						for y := 0; y < bs; y++ {
							setBlockF64(u, bs, x, y, blockF64(u, bs, x, y)-lxz*blockF64(u, bs, z, y))
						}
					}
				}
				in.Compute(p, sim.Time(bs*bs*bs/2)*l.cFlop)
			}
			if l.owner(t, k) == me { // L column block: solve X * U(k,k) = A(t,k)
				lb := in.WSlice(p, l.blocks[t*l.nb+k], bb)
				for y := 0; y < bs; y++ {
					piv := 1.0 / blockF64(diag, bs, y, y)
					for x := 0; x < bs; x++ {
						v := blockF64(lb, bs, x, y)
						for z := 0; z < y; z++ {
							v -= blockF64(lb, bs, x, z) * blockF64(diag, bs, z, y)
						}
						setBlockF64(lb, bs, x, y, v*piv)
					}
				}
				in.Compute(p, sim.Time(bs*bs*bs/2)*l.cFlop)
			}
		}
		in.Barrier(p)
		// Phase 3: interior updates A(i,j) -= L(i,k)*U(k,j).
		for i := k + 1; i < l.nb; i++ {
			var lblk []byte
			for j := k + 1; j < l.nb; j++ {
				if l.owner(i, j) != me {
					continue
				}
				if lblk == nil {
					lblk = in.RSlice(p, l.blocks[i*l.nb+k], bb)
				}
				ublk := in.RSlice(p, l.blocks[k*l.nb+j], bb)
				a := in.WSlice(p, l.blocks[i*l.nb+j], bb)
				for x := 0; x < bs; x++ {
					for z := 0; z < bs; z++ {
						lxz := blockF64(lblk, bs, x, z)
						for y := 0; y < bs; y++ {
							setBlockF64(a, bs, x, y, blockF64(a, bs, x, y)-lxz*blockF64(ublk, bs, z, y))
						}
					}
				}
				in.Compute(p, sim.Time(bs*bs*bs)*l.cFlop)
			}
		}
		in.Barrier(p)
	}
}

// Verify multiplies the factors back together and compares with the
// original matrix.
func (l *LU) Verify(sys *dsm.System) string {
	bs := l.bs
	lu := make([]float64, l.n*l.n)
	for bi := 0; bi < l.nb; bi++ {
		for bj := 0; bj < l.nb; bj++ {
			b := sys.ReadShared(l.blocks[bi*l.nb+bj], 8*bs*bs)
			for x := 0; x < bs; x++ {
				for y := 0; y < bs; y++ {
					lu[(bi*bs+x)*l.n+bj*bs+y] = blockF64(b, bs, x, y)
				}
			}
		}
	}
	// Spot-check 200 entries of L*U against the original matrix.
	r := newRng(0x1777)
	for t := 0; t < 200; t++ {
		i := int(r.next() % uint64(l.n))
		j := int(r.next() % uint64(l.n))
		var sum float64
		for k := 0; k <= i && k <= j; k++ {
			li := lu[i*l.n+k]
			if k == i {
				li = 1 // unit lower-triangular
			}
			if k <= j {
				sum += li * lu[k*l.n+j]
			}
		}
		want := l.orig[i*l.n+j]
		if math.Abs(sum-want) > 1e-6*(1+math.Abs(want)) {
			return fmt.Sprintf("LU: (L*U)[%d][%d] = %g, want %g", i, j, sum, want)
		}
	}
	return ""
}
