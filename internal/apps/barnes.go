package apps

import (
	"fmt"
	"math"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// Barnes is the SPLASH-2 Barnes-Hut N-body application ("Barnes-Spatial"
// in the paper's Table 1): an octree-based gravitational simulation.
// Every step each node reads the full body array, builds the octree
// locally, computes forces for its own bodies (the dominant, perfectly
// parallel work) and integrates them. Compute dominates communication,
// which is why the paper places Barnes in its well-scaling category
// (speedups 13-14 on 16 nodes).
type Barnes struct {
	n, steps int
	theta    float64
	dt       float64
	bodies   uint64 // shared: x,y,z,mass per body (32 B)
	vel      []vec3 // owner-private velocities
	init     []vec3
	mass     []float64

	cBuild sim.Time // per body inserted into the tree
	cForce sim.Time // per body-cell interaction
}

type vec3 struct{ x, y, z float64 }

func (a vec3) add(b vec3) vec3      { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec3) sub(b vec3) vec3      { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) scale(s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }
func (a vec3) norm2() float64       { return a.x*a.x + a.y*a.y + a.z*a.z }

// NewBarnes sizes the simulation for n bodies and the given step count.
func NewBarnes(n, steps int) *Barnes {
	b := &Barnes{
		n: n, steps: steps, theta: 0.6, dt: 0.005,
		vel:    make([]vec3, n),
		cBuild: 140 * sim.Nanosecond,
		cForce: 220 * sim.Nanosecond,
	}
	return b
}

// Name implements App.
func (b *Barnes) Name() string { return "Barnes" }

// SharedBytes implements App.
func (b *Barnes) SharedBytes() int { return 32*b.n + 4*dsm.PageSize }

// Init places bodies uniformly in the unit cube with small random
// velocities.
func (b *Barnes) Init(sys *dsm.System) {
	b.bodies = sys.AllocOwned(32 * b.n)
	r := newRng(0xBA51)
	buf := make([]byte, 32*b.n)
	b.init = make([]vec3, b.n)
	b.mass = make([]float64, b.n)
	for i := 0; i < b.n; i++ {
		p := vec3{r.float(), r.float(), r.float()}
		b.init[i] = p
		b.mass[i] = 1.0 / float64(b.n)
		b.vel[i] = vec3{r.float() - 0.5, r.float() - 0.5, r.float() - 0.5}.scale(0.01)
		dsm.SetF64(buf, 4*i+0, p.x)
		dsm.SetF64(buf, 4*i+1, p.y)
		dsm.SetF64(buf, 4*i+2, p.z)
		dsm.SetF64(buf, 4*i+3, b.mass[i])
	}
	sys.WriteShared(b.bodies, buf)
}

// Node implements App.
func (b *Barnes) Node(p *sim.Proc, in *dsm.Instance) {
	lo, hi := splitRange(b.n, in.Node(), in.N())
	for s := 0; s < b.steps; s++ {
		// Read the entire body array and build the octree locally.
		raw := in.RSlice(p, b.bodies, 32*b.n)
		pos := make([]vec3, b.n)
		mass := make([]float64, b.n)
		for i := 0; i < b.n; i++ {
			pos[i] = vec3{dsm.F64(raw, 4*i), dsm.F64(raw, 4*i+1), dsm.F64(raw, 4*i+2)}
			mass[i] = dsm.F64(raw, 4*i+3)
		}
		tree := buildOctree(pos, mass)
		in.Compute(p, sim.Time(b.n)*b.cBuild)
		// The body array is updated in place and a node's writes to its
		// own (home) pages are immediately visible to fetchers, so no
		// node may start writing until every node has finished reading:
		// SPLASH-2 Barnes has the same read/update phase barrier.
		in.Barrier(p)
		// Compute forces and integrate own bodies.
		if hi > lo {
			out := in.WSlice(p, b.bodies+uint64(32*lo), 32*(hi-lo))
			var interactions int
			for i := lo; i < hi; i++ {
				acc, cnt := tree.force(pos[i], b.theta)
				interactions += cnt
				b.vel[i] = b.vel[i].add(acc.scale(b.dt))
				np := pos[i].add(b.vel[i].scale(b.dt))
				j := i - lo
				dsm.SetF64(out, 4*j+0, np.x)
				dsm.SetF64(out, 4*j+1, np.y)
				dsm.SetF64(out, 4*j+2, np.z)
				dsm.SetF64(out, 4*j+3, mass[i])
			}
			in.Compute(p, sim.Time(interactions)*b.cForce)
		}
		in.Barrier(p)
	}
}

// Verify reruns the identical algorithm sequentially from the saved
// initial conditions and requires bit-identical final positions (the
// parallel run computes each body's force with the same tree and the
// same arithmetic order).
func (b *Barnes) Verify(sys *dsm.System) string {
	pos := append([]vec3(nil), b.init...)
	vel := make([]vec3, b.n)
	r := newRng(0xBA51)
	for i := 0; i < b.n; i++ {
		_ = r.float()
		_ = r.float()
		_ = r.float()
		vel[i] = vec3{r.float() - 0.5, r.float() - 0.5, r.float() - 0.5}.scale(0.01)
	}
	for s := 0; s < b.steps; s++ {
		tree := buildOctree(pos, b.mass)
		next := make([]vec3, b.n)
		for i := 0; i < b.n; i++ {
			acc, _ := tree.force(pos[i], b.theta)
			vel[i] = vel[i].add(acc.scale(b.dt))
			next[i] = pos[i].add(vel[i].scale(b.dt))
		}
		pos = next
	}
	out := sys.ReadShared(b.bodies, 32*b.n)
	for i := 0; i < b.n; i++ {
		got := vec3{dsm.F64(out, 4*i), dsm.F64(out, 4*i+1), dsm.F64(out, 4*i+2)}
		if got != pos[i] {
			return fmt.Sprintf("Barnes: body %d at %+v, want %+v", i, got, pos[i])
		}
	}
	return ""
}

// ---------------------------------------------------------------------
// Octree.
// ---------------------------------------------------------------------

type octNode struct {
	cx, cy, cz, half float64 // cube
	body             int     // body index if leaf (-1 internal, -2 empty)
	kids             [8]*octNode
	mass             float64
	comX, comY, comZ float64
}

func buildOctree(pos []vec3, mass []float64) *octNode {
	min, max := pos[0], pos[0]
	for _, p := range pos[1:] {
		min.x = math.Min(min.x, p.x)
		min.y = math.Min(min.y, p.y)
		min.z = math.Min(min.z, p.z)
		max.x = math.Max(max.x, p.x)
		max.y = math.Max(max.y, p.y)
		max.z = math.Max(max.z, p.z)
	}
	half := math.Max(max.x-min.x, math.Max(max.y-min.y, max.z-min.z))/2 + 1e-9
	root := &octNode{
		cx: (min.x + max.x) / 2, cy: (min.y + max.y) / 2, cz: (min.z + max.z) / 2,
		half: half, body: -2,
	}
	for i := range pos {
		root.insert(i, pos, mass)
	}
	root.summarize(pos, mass)
	return root
}

func (o *octNode) octant(p vec3) int {
	k := 0
	if p.x > o.cx {
		k |= 1
	}
	if p.y > o.cy {
		k |= 2
	}
	if p.z > o.cz {
		k |= 4
	}
	return k
}

func (o *octNode) child(k int) *octNode {
	if o.kids[k] == nil {
		h := o.half / 2
		c := &octNode{cx: o.cx, cy: o.cy, cz: o.cz, half: h, body: -2}
		if k&1 != 0 {
			c.cx += h
		} else {
			c.cx -= h
		}
		if k&2 != 0 {
			c.cy += h
		} else {
			c.cy -= h
		}
		if k&4 != 0 {
			c.cz += h
		} else {
			c.cz -= h
		}
		o.kids[k] = c
	}
	return o.kids[k]
}

func (o *octNode) insert(i int, pos []vec3, mass []float64) {
	switch o.body {
	case -2: // empty leaf
		o.body = i
	case -1: // internal
		o.child(o.octant(pos[i])).insert(i, pos, mass)
	default: // occupied leaf: split
		old := o.body
		o.body = -1
		if o.half < 1e-12 {
			// Degenerate coincident bodies: stack them in child 0.
			o.child(0).insert(old, pos, mass)
			o.child(0).insert(i, pos, mass)
			return
		}
		o.child(o.octant(pos[old])).insert(old, pos, mass)
		o.child(o.octant(pos[i])).insert(i, pos, mass)
	}
}

func (o *octNode) summarize(pos []vec3, mass []float64) {
	if o.body >= 0 {
		o.mass = mass[o.body]
		o.comX, o.comY, o.comZ = pos[o.body].x, pos[o.body].y, pos[o.body].z
		return
	}
	if o.body == -2 {
		return
	}
	for _, k := range o.kids {
		if k == nil {
			continue
		}
		k.summarize(pos, mass)
		o.mass += k.mass
		o.comX += k.comX * k.mass
		o.comY += k.comY * k.mass
		o.comZ += k.comZ * k.mass
	}
	if o.mass > 0 {
		o.comX /= o.mass
		o.comY /= o.mass
		o.comZ /= o.mass
	}
}

const softening2 = 1e-4

// force returns the acceleration on a body at p and the number of
// interactions evaluated.
func (o *octNode) force(p vec3, theta float64) (vec3, int) {
	if o.body == -2 || o.mass == 0 {
		return vec3{}, 0
	}
	d := vec3{o.comX - p.x, o.comY - p.y, o.comZ - p.z}
	r2 := d.norm2()
	if o.body >= 0 {
		if r2 < 1e-18 {
			return vec3{}, 0 // self
		}
		inv := 1 / math.Sqrt(r2+softening2)
		return d.scale(o.mass * inv * inv * inv), 1
	}
	if (2*o.half)*(2*o.half) < theta*theta*r2 {
		inv := 1 / math.Sqrt(r2+softening2)
		return d.scale(o.mass * inv * inv * inv), 1
	}
	var acc vec3
	cnt := 0
	for _, k := range o.kids {
		if k == nil {
			continue
		}
		a, c := k.force(p, theta)
		acc = acc.add(a)
		cnt += c
	}
	return acc, cnt
}
