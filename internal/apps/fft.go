package apps

import (
	"fmt"
	"math"
	"math/cmplx"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// FFT is the SPLASH-2 1D FFT kernel: the six-step algorithm on an
// m x m matrix of complex values (n = m^2), with three all-to-all
// transposes — the communication pattern that makes FFT the paper's
// canonical poorly-scaling, fetch-dominated application (IPPS'07 §4.1:
// "remote memory fetches account for roughly 77% of the overhead").
type FFT struct {
	logN int
	n, m int
	a, b uint64 // shared matrices, 16 bytes per complex element
	in   []complex128

	// Calibrated virtual compute costs.
	cButterfly sim.Time // per butterfly in a row FFT
	cTwiddle   sim.Time // per twiddle multiply
	cMove      sim.Time // per element moved in a transpose
}

// NewFFT sizes the kernel for n = 2^logN complex values (logN must be
// even).
func NewFFT(logN int) *FFT {
	if logN%2 != 0 || logN < 4 {
		panic("apps: FFT logN must be even and >= 4")
	}
	f := &FFT{
		logN: logN, n: 1 << logN, m: 1 << (logN / 2),
		cButterfly: 30 * sim.Nanosecond,
		cTwiddle:   22 * sim.Nanosecond,
		cMove:      8 * sim.Nanosecond,
	}
	return f
}

// Name implements App.
func (f *FFT) Name() string { return "FFT" }

// SharedBytes implements App.
func (f *FFT) SharedBytes() int { return 2*16*f.n + 4*dsm.PageSize }

// Init allocates the matrices (rows homed at their owners) and fills A
// with deterministic pseudo-random complex input.
func (f *FFT) Init(sys *dsm.System) {
	f.a = sys.AllocOwned(16 * f.n)
	f.b = sys.AllocOwned(16 * f.n)
	r := newRng(0xFF7)
	f.in = make([]complex128, f.n)
	buf := make([]byte, 16*f.n)
	for i := range f.in {
		f.in[i] = complex(r.float()*2-1, r.float()*2-1)
		putComplex(buf, i, f.in[i])
	}
	sys.WriteShared(f.a, buf)
}

func putComplex(b []byte, i int, v complex128) {
	dsm.SetF64(b, 2*i, real(v))
	dsm.SetF64(b, 2*i+1, imag(v))
}

func getComplex(b []byte, i int) complex128 {
	return complex(dsm.F64(b, 2*i), dsm.F64(b, 2*i+1))
}

// Node implements App: the per-node six-step body.
func (f *FFT) Node(p *sim.Proc, in *dsm.Instance) {
	lo, hi := splitRange(f.m, in.Node(), in.N())
	f.transpose(p, in, f.a, f.b, lo, hi)
	in.Barrier(p)
	f.fftRows(p, in, f.b, lo, hi, true)
	in.Barrier(p)
	f.transpose(p, in, f.b, f.a, lo, hi)
	in.Barrier(p)
	f.fftRows(p, in, f.a, lo, hi, false)
	in.Barrier(p)
	f.transpose(p, in, f.a, f.b, lo, hi)
	in.Barrier(p)
}

// transpose writes rows [lo,hi) of dst with dst[r][c] = src[c][r]. The
// reads walk every source row's [lo,hi) sub-range: an all-to-all.
func (f *FFT) transpose(p *sim.Proc, in *dsm.Instance, src, dst uint64, lo, hi int) {
	if hi <= lo {
		return
	}
	rows := hi - lo
	// Bulk-prefetch the column strip: one concurrent fetch burst instead
	// of a page fault per source row.
	ranges := make([]dsm.Range, 0, f.m)
	for c := 0; c < f.m; c++ {
		ranges = append(ranges, dsm.Range{Addr: src + uint64(16*(c*f.m+lo)), Len: 16 * rows})
	}
	in.Prefetch(p, ranges)
	d := in.WSlice(p, dst+uint64(16*lo*f.m), 16*rows*f.m)
	for c := 0; c < f.m; c++ {
		s := in.RSlice(p, src+uint64(16*(c*f.m+lo)), 16*rows)
		for r := 0; r < rows; r++ {
			copy(d[16*(r*f.m+c):16*(r*f.m+c)+16], s[16*r:16*r+16])
		}
	}
	in.Compute(p, sim.Time(rows*f.m)*f.cMove)
}

// fftRows runs an in-place m-point FFT on each owned row; when twiddle
// is set, each element is multiplied by the six-step twiddle factor
// w^(row*col) first.
func (f *FFT) fftRows(p *sim.Proc, in *dsm.Instance, arr uint64, lo, hi int, twiddle bool) {
	if hi <= lo {
		return
	}
	rows := hi - lo
	b := in.WSlice(p, arr+uint64(16*lo*f.m), 16*rows*f.m)
	row := make([]complex128, f.m)
	for r := 0; r < rows; r++ {
		for c := 0; c < f.m; c++ {
			row[c] = getComplex(b, r*f.m+c)
		}
		fft1d(row)
		if twiddle {
			// Six-step twiddle: after the first row FFT, element k1 of
			// global row g is scaled by w^(g*k1), w = exp(-2*pi*i/n).
			g := lo + r
			for c := 0; c < f.m; c++ {
				ang := -2 * math.Pi * float64(g) * float64(c) / float64(f.n)
				row[c] *= cmplx.Exp(complex(0, ang))
			}
		}
		for c := 0; c < f.m; c++ {
			putComplex(b, r*f.m+c, row[c])
		}
	}
	logM := f.logN / 2
	work := sim.Time(rows) * sim.Time(f.m*logM/2) * f.cButterfly
	if twiddle {
		work += sim.Time(rows*f.m) * f.cTwiddle
	}
	in.Compute(p, work)
}

// fft1d is an iterative radix-2 Cooley-Tukey DIT FFT.
func fft1d(x []complex128) {
	n := len(x)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for l := 2; l <= n; l <<= 1 {
		ang := -2 * math.Pi / float64(l)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += l {
			w := complex(1, 0)
			for k := 0; k < l/2; k++ {
				u := x[i+k]
				v := x[i+k+l/2] * w
				x[i+k] = u + v
				x[i+k+l/2] = u - v
				w *= wl
			}
		}
	}
}

// Verify spot-checks output bins against a direct DFT of the saved
// input. The final transpose restores natural order, so bin k of the
// DFT is element k of B.
func (f *FFT) Verify(sys *dsm.System) string {
	out := sys.ReadShared(f.b, 16*f.n)
	r := newRng(99)
	bins := 12
	if f.n < bins {
		bins = f.n
	}
	for t := 0; t < bins; t++ {
		k := int(r.next() % uint64(f.n))
		var want complex128
		for j := 0; j < f.n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(f.n)
			want += f.in[j] * cmplx.Exp(complex(0, ang))
		}
		got := getComplex(out, k)
		if cmplx.Abs(got-want) > 1e-6*(1+cmplx.Abs(want)) {
			return fmt.Sprintf("FFT bin %d: got %v want %v", k, got, want)
		}
	}
	return ""
}
