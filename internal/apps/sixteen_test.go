package apps

import (
	"testing"

	"multiedge/internal/cluster"
)

func TestAppsCorrectSixteenNodesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node small-scale verification skipped in -short")
	}
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			app := Build(name, SizeSmall, 16)
			_, sys := Run(cluster.OneLink1G(16), app)
			if msg := app.Verify(sys); msg != "" {
				t.Fatal(msg)
			}
		})
	}
}
