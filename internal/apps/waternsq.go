package apps

import (
	"fmt"
	"math"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// WaterNsq is the SPLASH-2 Water-Nsquared application: an O(n^2)
// molecular dynamics simulation. Each node computes its share of the
// pairwise interactions, accumulating partial forces in a node-local
// shared array; after a barrier each molecule's owner sums the partials
// and integrates. The potential energy is reduced into shared memory
// under a global lock. Interactions dominate: the paper's best-scaling
// category.
type WaterNsq struct {
	n, steps int
	dt       float64
	nodes    int
	pos      uint64   // shared: x,y,z per molecule (24 B)
	partials []uint64 // per node: partial force array, 24 B per molecule
	pe       uint64   // shared potential energy accumulator
	vel      []vec3
	initPos  []vec3

	cPair sim.Time // per pair interaction
}

const wnLock = 5

// wnSoft2 is Water-Nsquared's force softening (squared length).
const wnSoft2 = 0.05

// NewWaterNsq sizes the simulation for n molecules.
func NewWaterNsq(n, steps, nodes int) *WaterNsq {
	w := &WaterNsq{
		n: n, steps: steps, dt: 1e-4,
		vel:   make([]vec3, n),
		cPair: 1500 * sim.Nanosecond,
	}
	w.nodes = nodes
	return w
}

// Name implements App.
func (w *WaterNsq) Name() string { return "Water-Nsquared" }

// SharedBytes implements App.
func (w *WaterNsq) SharedBytes() int {
	return 24*w.n*(1+w.nodes) + (4+2*w.nodes)*dsm.PageSize
}

// Init scatters molecules in a cube sized for liquid-like density.
func (w *WaterNsq) Init(sys *dsm.System) {
	w.pos = sys.AllocOwned(24 * w.n)
	w.partials = nil
	for p := 0; p < w.nodes; p++ {
		w.partials = append(w.partials, sys.AllocAt(24*w.n, p))
	}
	w.pe = sys.AllocPages(8)
	r := newRng(0x3A7E4)
	side := math.Cbrt(float64(w.n))
	buf := make([]byte, 24*w.n)
	w.initPos = make([]vec3, w.n)
	for i := 0; i < w.n; i++ {
		p := vec3{r.float() * side, r.float() * side, r.float() * side}
		w.initPos[i] = p
		dsm.SetF64(buf, 3*i+0, p.x)
		dsm.SetF64(buf, 3*i+1, p.y)
		dsm.SetF64(buf, 3*i+2, p.z)
	}
	sys.WriteShared(w.pos, buf)
	sys.WriteShared(w.pe, make([]byte, 8))
}

// pairOwner deterministically assigns pair (i<j) to the owner of i or j,
// alternating for balance.
func pairOwner(i, j int) int {
	if (i+j)%2 == 0 {
		return i
	}
	return j
}

// ljForce returns the (softened) Lennard-Jones force of j on i and the
// pair potential. soft2 bounds the force when random placement puts two
// molecules arbitrarily close, keeping the short synthetic runs
// numerically stable.
func ljForce(pi, pj vec3, soft2 float64) (vec3, float64) {
	d := pi.sub(pj)
	r2 := d.norm2() + soft2
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	f := 24 * (2*inv6*inv6 - inv6) * inv2
	return d.scale(f), 4 * (inv6*inv6 - inv6)
}

// Node implements App.
func (w *WaterNsq) Node(p *sim.Proc, in *dsm.Instance) {
	me := in.Node()
	nn := in.N()
	lo, hi := splitRange(w.n, me, nn)
	owner := func(i int) int {
		for q := 0; q < nn; q++ {
			qlo, qhi := splitRange(w.n, q, nn)
			if i >= qlo && i < qhi {
				return q
			}
		}
		return nn - 1
	}
	for s := 0; s < w.steps; s++ {
		raw := in.RSlice(p, w.pos, 24*w.n)
		pos := make([]vec3, w.n)
		for i := range pos {
			pos[i] = vec3{dsm.F64(raw, 3*i), dsm.F64(raw, 3*i+1), dsm.F64(raw, 3*i+2)}
		}
		// Compute this node's share of pairwise interactions into a
		// private accumulator.
		acc := make([]vec3, w.n)
		var pe float64
		pairs := 0
		for i := 0; i < w.n; i++ {
			for j := i + 1; j < w.n; j++ {
				if owner(pairOwner(i, j)) != me {
					continue
				}
				f, e := ljForce(pos[i], pos[j], wnSoft2)
				acc[i] = acc[i].add(f)
				acc[j] = acc[j].sub(f)
				pe += e
				pairs++
			}
		}
		in.Compute(p, sim.Time(pairs)*w.cPair)
		// Publish the partial forces.
		pb := in.WSlice(p, w.partials[me], 24*w.n)
		for i := 0; i < w.n; i++ {
			dsm.SetF64(pb, 3*i+0, acc[i].x)
			dsm.SetF64(pb, 3*i+1, acc[i].y)
			dsm.SetF64(pb, 3*i+2, acc[i].z)
		}
		// Reduce the potential energy under the global lock.
		in.Acquire(p, wnLock)
		eb := in.WSlice(p, w.pe, 8)
		dsm.SetF64(eb, 0, dsm.F64(eb, 0)+pe)
		in.Release(p, wnLock)
		in.Barrier(p)
		// Sum partials for owned molecules and integrate.
		if hi > lo {
			out := in.WSlice(p, w.pos+uint64(24*lo), 24*(hi-lo))
			span := 24 * (hi - lo)
			for i := lo; i < hi; i++ {
				var f vec3
				for q := 0; q < nn; q++ {
					qb := in.RSlice(p, w.partials[q]+uint64(24*lo), span)
					k := i - lo
					f = f.add(vec3{dsm.F64(qb, 3*k), dsm.F64(qb, 3*k+1), dsm.F64(qb, 3*k+2)})
				}
				w.vel[i] = w.vel[i].add(f.scale(w.dt))
				np := pos[i].add(w.vel[i].scale(w.dt))
				k := i - lo
				dsm.SetF64(out, 3*k+0, np.x)
				dsm.SetF64(out, 3*k+1, np.y)
				dsm.SetF64(out, 3*k+2, np.z)
			}
		}
		in.Barrier(p)
	}
}

// Verify replays the run sequentially with the same partial-sum
// structure (same node count, same pair assignment, same summation
// order) and requires bit-identical positions.
func (w *WaterNsq) Verify(sys *dsm.System) string {
	nn := len(w.partials)
	pos := append([]vec3(nil), w.initPos...)
	vel := make([]vec3, w.n)
	owner := func(i int) int {
		for q := 0; q < nn; q++ {
			qlo, qhi := splitRange(w.n, q, nn)
			if i >= qlo && i < qhi {
				return q
			}
		}
		return nn - 1
	}
	for s := 0; s < w.steps; s++ {
		parts := make([][]vec3, nn)
		for q := range parts {
			parts[q] = make([]vec3, w.n)
		}
		for i := 0; i < w.n; i++ {
			for j := i + 1; j < w.n; j++ {
				q := owner(pairOwner(i, j))
				f, _ := ljForce(pos[i], pos[j], wnSoft2)
				parts[q][i] = parts[q][i].add(f)
				parts[q][j] = parts[q][j].sub(f)
			}
		}
		next := make([]vec3, w.n)
		for i := 0; i < w.n; i++ {
			var f vec3
			for q := 0; q < nn; q++ {
				f = f.add(parts[q][i])
			}
			vel[i] = vel[i].add(f.scale(w.dt))
			next[i] = pos[i].add(vel[i].scale(w.dt))
		}
		pos = next
	}
	out := sys.ReadShared(w.pos, 24*w.n)
	for i := 0; i < w.n; i++ {
		got := vec3{dsm.F64(out, 3*i), dsm.F64(out, 3*i+1), dsm.F64(out, 3*i+2)}
		if d := got.sub(pos[i]); math.Abs(d.x)+math.Abs(d.y)+math.Abs(d.z) > 1e-9 {
			return fmt.Sprintf("Water-Nsquared: molecule %d at %+v, want %+v", i, got, pos[i])
		}
	}
	return ""
}
