package apps

import (
	"fmt"

	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// Radix is the SPLASH-2 integer radix sort: each pass histograms one
// digit locally, computes global digit offsets from all nodes'
// histograms, then permutes keys into a destination array with
// scattered remote writes — the poor-spatial-locality, false-sharing
// pattern the paper singles out (IPPS'07 §4.1: "Radix has poor spatial
// locality generating a high amount of traffic and false sharing").
type Radix struct {
	n      int
	digits int // bits per digit
	passes int
	nodes  int
	k0, k1 uint64   // key arrays (ping-pong)
	hist   []uint64 // per-node histogram pages
	input  []uint32

	cHist sim.Time // per key histogrammed
	cScan sim.Time // per histogram bucket scanned
	cPerm sim.Time // per key permuted
}

// NewRadix sizes the sort for n uint32 keys over the given node count.
func NewRadix(n, nodes int) *Radix {
	r := &Radix{
		n: n, digits: 8, passes: 4, nodes: nodes,
		cHist: 5 * sim.Nanosecond,
		cScan: 4 * sim.Nanosecond,
		cPerm: 30 * sim.Nanosecond,
	}
	return r
}

// Name implements App.
func (r *Radix) Name() string { return "Radix" }

// SharedBytes implements App.
func (r *Radix) SharedBytes() int {
	return 2*4*r.n + r.nodes*dsm.PageSize + 8*dsm.PageSize
}

// Init allocates the key and histogram arrays and fills the keys with
// deterministic pseudo-random values.
func (r *Radix) Init(sys *dsm.System) {
	r.k0 = sys.AllocOwned(4 * r.n)
	r.k1 = sys.AllocOwned(4 * r.n)
	r.hist = make([]uint64, r.nodes)
	for p := 0; p < r.nodes; p++ {
		r.hist[p] = sys.AllocAt(4*(1<<r.digits), p)
	}
	g := newRng(0x3AD1)
	r.input = make([]uint32, r.n)
	buf := make([]byte, 4*r.n)
	for i := range r.input {
		r.input[i] = uint32(g.next())
		dsm.SetU32(buf, i, r.input[i])
	}
	sys.WriteShared(r.k0, buf)
}

// Node implements App.
func (r *Radix) Node(p *sim.Proc, in *dsm.Instance) {
	me := in.Node()
	lo, hi := splitRange(r.n, me, in.N())
	mine := hi - lo
	radix := 1 << r.digits
	src, dst := r.k0, r.k1
	for pass := 0; pass < r.passes; pass++ {
		shift := uint(pass * r.digits)
		// Phase 1: local histogram of the owned segment.
		counts := make([]uint32, radix)
		if mine > 0 {
			keys := in.RSlice(p, src+uint64(4*lo), 4*mine)
			for i := 0; i < mine; i++ {
				counts[(dsm.U32(keys, i)>>shift)&uint32(radix-1)]++
			}
			in.Compute(p, sim.Time(mine)*r.cHist)
		}
		hb := in.WSlice(p, r.hist[me], 4*radix)
		for d := 0; d < radix; d++ {
			dsm.SetU32(hb, d, counts[d])
		}
		in.Barrier(p)
		// Phase 2: read every node's histogram; compute this node's
		// starting offset for each digit.
		offsets := make([]uint32, radix)
		var base uint32
		all := make([][]byte, in.N())
		for q := 0; q < in.N(); q++ {
			all[q] = in.RSlice(p, r.hist[q], 4*radix)
		}
		for d := 0; d < radix; d++ {
			offsets[d] = base
			for q := 0; q < me; q++ {
				offsets[d] += dsm.U32(all[q], d)
			}
			for q := 0; q < in.N(); q++ {
				base += dsm.U32(all[q], d)
			}
		}
		in.Compute(p, sim.Time(in.N()*radix)*r.cScan)
		// Phase 3: permute owned keys to their destinations (scattered
		// remote writes). The destination regions are known from the
		// offsets, so bulk-prefetch them first.
		if mine > 0 {
			ranges := make([]dsm.Range, 0, radix)
			for d := 0; d < radix; d++ {
				cnt := int(counts[d])
				if cnt > 0 {
					ranges = append(ranges, dsm.Range{Addr: dst + uint64(4*offsets[d]), Len: 4 * cnt})
				}
			}
			in.Prefetch(p, ranges)
			keys := in.RSlice(p, src+uint64(4*lo), 4*mine)
			for i := 0; i < mine; i++ {
				k := dsm.U32(keys, i)
				d := (k >> shift) & uint32(radix-1)
				pos := offsets[d]
				offsets[d]++
				db := in.WSlice(p, dst+uint64(4*pos), 4)
				dsm.SetU32(db, 0, k)
			}
			in.Compute(p, sim.Time(mine)*r.cPerm)
		}
		in.Barrier(p)
		src, dst = dst, src
	}
}

// Verify checks the output is sorted and is a permutation of the input.
func (r *Radix) Verify(sys *dsm.System) string {
	// After an even number of passes the result is back in k0.
	out := sys.ReadShared(r.k0, 4*r.n)
	var sumIn, sumOut uint64
	var xorIn, xorOut uint32
	prev := uint32(0)
	for i := 0; i < r.n; i++ {
		v := dsm.U32(out, i)
		if v < prev {
			return fmt.Sprintf("Radix: out[%d]=%d < out[%d]=%d", i, v, i-1, prev)
		}
		prev = v
		sumOut += uint64(v)
		xorOut ^= v
		sumIn += uint64(r.input[i])
		xorIn ^= r.input[i]
	}
	if sumIn != sumOut || xorIn != xorOut {
		return "Radix: output is not a permutation of the input"
	}
	return ""
}
