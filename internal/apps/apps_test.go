package apps

import (
	"math"
	"testing"
	"testing/quick"

	"multiedge/internal/cluster"
)

// runAndVerify builds and runs the named app at test size on a cluster
// and checks the result against its sequential reference.
func runAndVerify(t *testing.T, name string, nodes int, cfg cluster.Config) Result {
	t.Helper()
	cfg.Nodes = nodes
	app := Build(name, SizeTest, nodes)
	res, sys := Run(cfg, app)
	if msg := app.Verify(sys); msg != "" {
		t.Fatalf("%s on %d nodes (%s): %s", name, nodes, cfg.Name, msg)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("%s: elapsed = %v", name, res.Elapsed)
	}
	return res
}

func TestAppsCorrectSingleNode(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, name, 1, cluster.OneLink1G(1))
		})
	}
}

func TestAppsCorrectFourNodes(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, name, 4, cluster.OneLink1G(4))
		})
	}
}

func TestAppsCorrectThreeNodesDualLinkUnordered(t *testing.T) {
	// Odd node count plus out-of-order dual links: the adversarial
	// configuration for the DSM's ordering assumptions.
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, name, 3, cluster.TwoLinkUnordered1G(3))
		})
	}
}

func TestAppsCorrectStrictDualLink(t *testing.T) {
	for _, name := range []string{"FFT", "Radix", "Water-SpatialFL"} {
		name := name
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, name, 4, cluster.TwoLink1G(4))
		})
	}
}

func TestAppsCorrectUnderLoss(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Link.LossProb = 0.01
	cfg.Seed = 123
	for _, name := range []string{"FFT", "Barnes", "Raytrace"} {
		name := name
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, name, 2, cfg)
		})
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	// Compute-heavy apps must show real speedup once the problem is
	// large enough to amortize synchronization (test-scale inputs are
	// deliberately tiny, so use mid-size instances here).
	builders := map[string]func(nodes int) App{
		"Barnes":         func(nodes int) App { return NewBarnes(1024, 2) },
		"Water-Nsquared": func(nodes int) App { return NewWaterNsq(256, 2, nodes) },
		"Raytrace":       func(nodes int) App { return NewRaytrace(128, 128, 16) },
	}
	for name, mk := range builders {
		seqApp := mk(1)
		seqRes, seqSys := Run(cluster.OneLink1G(1), seqApp)
		if msg := seqApp.Verify(seqSys); msg != "" {
			t.Fatalf("%s seq: %s", name, msg)
		}
		parApp := mk(4)
		parRes, parSys := Run(cluster.OneLink1G(4), parApp)
		if msg := parApp.Verify(parSys); msg != "" {
			t.Fatalf("%s par: %s", name, msg)
		}
		s := Speedup(seqRes.Elapsed, parRes.Elapsed)
		if s < 2 {
			t.Errorf("%s: speedup on 4 nodes = %.2f, want > 2", name, s)
		}
	}
}

func TestBreakdownsPopulated(t *testing.T) {
	res := runAndVerify(t, "FFT", 4, cluster.OneLink1G(4))
	bd := res.MeanBreakdown()
	if bd.Compute <= 0 {
		t.Error("no compute time")
	}
	if bd.Data <= 0 {
		t.Error("no data wait despite FFT transposes")
	}
	if bd.Barrier <= 0 {
		t.Error("no barrier time")
	}
	if res.DSM.Fetches == 0 {
		t.Error("no page fetches")
	}
}

func TestLockAppsUseLocks(t *testing.T) {
	res := runAndVerify(t, "Raytrace", 4, cluster.OneLink1G(4))
	if res.DSM.LockAcquires == 0 {
		t.Error("raytrace task queue acquired no locks")
	}
	res = runAndVerify(t, "Water-SpatialFL", 4, cluster.OneLink1G(4))
	if res.DSM.LockAcquires == 0 {
		t.Error("water-spatialFL acquired no locks")
	}
}

func TestResultNetStats(t *testing.T) {
	res := runAndVerify(t, "Radix", 4, cluster.OneLink1G(4))
	if res.Net.Proto.DataFramesSent == 0 {
		t.Error("no protocol traffic recorded")
	}
	if res.ProtoCPUFrac <= 0 || res.ProtoCPUFrac > 1 {
		t.Errorf("protocol CPU fraction = %v", res.ProtoCPUFrac)
	}
}

func TestSplitRange(t *testing.T) {
	f := func(n uint16, of uint8) bool {
		N := int(n)%1000 + 1
		P := int(of)%17 + 1
		covered := 0
		prevHi := 0
		for id := 0; id < P; id++ {
			lo, hi := splitRange(N, id, P)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
			if hi-lo < N/P || hi-lo > N/P+1 {
				return false
			}
		}
		return covered == N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRngDeterministic(t *testing.T) {
	a, b := newRng(7), newRng(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	v := newRng(9).float()
	if v < 0 || v >= 1 {
		t.Fatalf("float out of range: %v", v)
	}
}

func TestFFT1DKnownValues(t *testing.T) {
	// FFT of a constant signal: all energy in bin 0.
	x := make([]complex128, 8)
	for i := range x {
		x[i] = 1
	}
	fft1d(x)
	if real(x[0]) != 8 || imag(x[0]) != 0 {
		t.Errorf("bin 0 = %v, want 8", x[0])
	}
	for i := 1; i < 8; i++ {
		if abs := real(x[i])*real(x[i]) + imag(x[i])*imag(x[i]); abs > 1e-18 {
			t.Errorf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestOctreeMassConservation(t *testing.T) {
	r := newRng(5)
	n := 500
	pos := make([]vec3, n)
	mass := make([]float64, n)
	var total float64
	for i := range pos {
		pos[i] = vec3{r.float(), r.float(), r.float()}
		mass[i] = r.float() + 0.1
		total += mass[i]
	}
	tree := buildOctree(pos, mass)
	if d := tree.mass - total; d > 1e-9 || d < -1e-9 {
		t.Errorf("tree mass %v, want %v", tree.mass, total)
	}
}

func TestOctreeForceMatchesDirectSum(t *testing.T) {
	// With theta=0 the tree walk degenerates to the direct sum.
	r := newRng(6)
	n := 60
	pos := make([]vec3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec3{r.float(), r.float(), r.float()}
		mass[i] = 1.0 / float64(n)
	}
	tree := buildOctree(pos, mass)
	for i := 0; i < 5; i++ {
		got, _ := tree.force(pos[i], 0)
		var want vec3
		for j := range pos {
			if j == i {
				continue
			}
			d := pos[j].sub(pos[i])
			r2 := d.norm2()
			inv := 1 / math.Sqrt(r2+softening2)
			want = want.add(d.scale(mass[j] * inv * inv * inv))
		}
		if d := got.sub(want); d.norm2() > 1e-18 {
			t.Errorf("body %d force %+v, want %+v", i, got, want)
		}
	}
}

func TestPairOwnerCoversAllPairs(t *testing.T) {
	n := 40
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			o := pairOwner(i, j)
			if o != i && o != j {
				t.Fatalf("pairOwner(%d,%d) = %d", i, j, o)
			}
		}
	}
}

func TestLJForceAntisymmetric(t *testing.T) {
	a := vec3{0.1, 0.2, 0.3}
	b := vec3{0.9, 0.7, 0.5}
	fab, eab := ljForce(a, b, 1e-9)
	fba, eba := ljForce(b, a, 1e-9)
	if fab.add(fba).norm2() > 1e-20 {
		t.Error("LJ force not antisymmetric")
	}
	if eab != eba {
		t.Error("LJ energy not symmetric")
	}
}

func TestBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build of unknown app did not panic")
		}
	}()
	Build("NoSuchApp", SizeTest, 4)
}

// TestVerifiersDetectCorruption mutates the result in shared memory and
// requires every application's Verify to notice — a meta-test that the
// verification itself has teeth.
func TestVerifiersDetectCorruption(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			app := Build(name, SizeTest, 2)
			_, sys := Run(cluster.OneLink1G(2), app)
			if msg := app.Verify(sys); msg != "" {
				t.Fatalf("clean run failed verify: %s", msg)
			}
			// Flip bytes densely across the home copies of the shared
			// region (where all application data lives).
			// Flip the high (exponent) byte of every float-sized word so
			// even tolerance-based verifiers must notice.
			base, span := sys.Base(), sys.SharedBytes()
			for _, in := range sys.Insts {
				m := in.Mem()
				for i := 6; i < span; i += 64 {
					m[base+uint64(i)] ^= 0x7f
				}
			}
			if msg := app.Verify(sys); msg == "" {
				t.Fatalf("%s: verifier missed injected corruption", name)
			}
		})
	}
}
