package apps

import (
	"fmt"
	"testing"
	"time"

	"multiedge/internal/cluster"
)

func TestScaleProbe(t *testing.T) {
	for _, name := range Names {
		for _, nodes := range []int{1, 16} {
			app := Build(name, SizeSmall, nodes)
			t0 := time.Now()
			res, _ := Run(cluster.OneLink1G(nodes), app)
			fmt.Printf("%-16s n=%-2d  virt=%-12v wall=%-10v frames=%d\n",
				name, nodes, res.Elapsed, time.Since(t0).Round(time.Millisecond), res.Net.Proto.DataFramesSent)
		}
	}
}
