// Blockstore: the third application domain of the paper's §1 thesis —
// remote block storage over the same edge-based transport that serves
// shared memory and message passing. The volume's host is completely
// passive (one-sided RDMA I/O); writes are published with a
// forward-fenced commit record, so no observer can ever see a commit
// that precedes its data, even with frames striped across two
// unordered rails.
package main

import (
	"bytes"
	"fmt"

	"multiedge"
)

const (
	clients   = 3
	blockSize = 4096
	blocks    = 4096 // 16 MiB volume
	iosEach   = 400
)

func main() {
	cfg := multiedge.TwoLinkUnordered1G(clients + 1)
	cfg.Core.MemBytes = blocks*blockSize + (8 << 20)
	cl := multiedge.NewCluster(cfg)
	conns := cl.FullMesh()

	vol := multiedge.NewVolume(cl, 0, blocks, blockSize, clients)
	fmt.Printf("volume: %d x %d B = %d MiB on node 0 (passive host)\n",
		blocks, blockSize, vol.Bytes()>>20)

	var start, end multiedge.Time
	start = cl.Env.Now()
	done := 0
	cls := make([]*multiedge.BlkClient, clients)
	for i := 0; i < clients; i++ {
		i := i
		cli := multiedge.OpenVolume(cl, vol, i+1, conns[i+1][0], i)
		cls[i] = cli
		cl.Env.Go(fmt.Sprintf("client%d", i), func(p *multiedge.Proc) {
			// Each client owns a contiguous extent; a write-heavy pass
			// then a read-back verification pass.
			base := i * (blocks / clients)
			buf := make([]byte, blockSize)
			for n := 0; n < iosEach; n++ {
				b := base + (n*37)%(blocks/clients)
				for j := range buf {
					buf[j] = byte(b + j + i)
				}
				cli.Write(p, b, buf)
			}
			got := make([]byte, blockSize)
			for n := 0; n < iosEach; n++ {
				b := base + (n*37)%(blocks/clients)
				cli.Read(p, b, got)
				for j := range buf {
					buf[j] = byte(b + j + i)
				}
				if !bytes.Equal(got, buf) {
					fmt.Printf("client %d: block %d CORRUPTED\n", i, b)
					return
				}
			}
			done++
			if t := cl.Env.Now(); t > end {
				end = t
			}
		})
	}
	cl.Env.Run()

	var reads, writes, rbytes, wbytes uint64
	for _, c := range cls {
		reads += c.Stats.Reads
		writes += c.Stats.Writes
		rbytes += c.Stats.BytesRead
		wbytes += c.Stats.BytesWrite
	}
	el := (end - start).Seconds()
	fmt.Printf("%d clients finished: %d writes + %d reads of %d B in %v\n",
		done, writes, reads, blockSize, end-start)
	fmt.Printf("aggregate: %.0f IOPS, %.1f MB/s (4K random, fenced commits)\n",
		float64(reads+writes)/el, float64(rbytes+wbytes)/1e6/el)

	fmt.Println()
	mirrorDemo()
}

// mirrorDemo mirrors a volume across two hosts, kills one host
// entirely, and shows deadline failover plus online rebuild.
func mirrorDemo() {
	cfg := multiedge.TwoLinkUnordered1G(3)
	cfg.Core.MemBytes = 16 << 20
	cl := multiedge.NewCluster(cfg)
	conns := cl.FullMesh()
	va := multiedge.NewVolume(cl, 0, 256, blockSize, 1)
	vb := multiedge.NewVolume(cl, 1, 256, blockSize, 1)
	m := multiedge.OpenMirror(
		multiedge.OpenVolume(cl, va, 2, conns[2][0], 0),
		multiedge.OpenVolume(cl, vb, 2, conns[2][1], 0))

	cl.Env.Go("io", func(p *multiedge.Proc) {
		buf := make([]byte, blockSize)
		for b := 0; b < 256; b++ {
			for j := range buf {
				buf[j] = byte(b + j)
			}
			m.Write(p, b, buf)
		}
		fmt.Printf("[%v] mirror: 256 blocks on hosts 0+1\n", cl.Env.Now())

		cl.FailLink(0, 0)
		cl.FailLink(0, 1)
		fmt.Printf("[%v] host 0 down (all rails cut)\n", cl.Env.Now())
		got := make([]byte, blockSize)
		m.Read(p, 42, got)
		a, bDown := m.Down()
		fmt.Printf("[%v] read served after failover (legs down: %v,%v), %d failover(s)\n",
			cl.Env.Now(), a, bDown, m.Failovers)

		cl.RestoreLink(0, 0)
		cl.RestoreLink(0, 1)
		p.Sleep(20 * multiedge.Millisecond)
		if m.Rebuild(p) {
			fmt.Printf("[%v] host 0 repaired; rebuild copied %d blocks, mirror healthy\n",
				cl.Env.Now(), m.Rebuilt)
		}
	})
	cl.Env.RunUntil(30 * multiedge.Second)
}
