// Failures: MultiEdge's end-to-end reliability under transient loss
// (IPPS'07 §2.4) and under hard link failure. First, bulk transfers
// cross links that randomly drop frames; the receiver's NACKs and the
// sender's coarse retransmission timeout repair every gap, and the
// delivered bytes are verified identical. Then a cable is pulled
// outright mid-transfer: the sender's dead-link detection sheds the
// rail, the transfer continues at the survivor's speed, and when the
// cable is plugged back in a probe re-admits the rail.
package main

import (
	"bytes"
	"fmt"

	"multiedge"
)

func main() {
	for _, loss := range []float64{0, 0.01, 0.05, 0.15} {
		run(loss)
	}
	fmt.Println()
	hardFailure()
}

// hardFailure pulls one of the two rails 5 ms into a 32 MiB transfer
// and plugs it back in at 100 ms.
func hardFailure() {
	cfg := multiedge.TwoLinkUnordered1G(2)
	cfg.Core.MemBytes = 64 << 20
	cl := multiedge.NewCluster(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	const n = 32 << 20
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i*13 + 7)
	}

	cl.Env.At(5*multiedge.Millisecond, func() {
		fmt.Printf("[%v] rail 1 cable pulled\n", cl.Env.Now())
		cl.FailLink(0, 1)
	})
	cl.Env.At(100*multiedge.Millisecond, func() {
		fmt.Printf("[%v] rail 1 cable re-plugged\n", cl.Env.Now())
		cl.RestoreLink(0, 1)
	})

	var start, end multiedge.Time
	cl.Env.Go("sender", func(p *multiedge.Proc) {
		start = cl.Env.Now()
		c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite}).Wait(p)
		end = cl.Env.Now()
	})
	cl.Env.RunUntil(10 * multiedge.Second)

	st := ep0.Stats
	ok := bytes.Equal(ep1.Mem()[dst:dst+n], ep0.Mem()[src:src+n])
	verdict := "verified byte-identical"
	if !ok {
		verdict = "CORRUPTED"
	}
	fmt.Printf("hard failure: 32 MiB in %v  throughput %.1f MB/s  "+
		"link deaths %d  restores %d  -> %s\n",
		end-start, float64(n)/1e6/(end-start).Seconds(),
		st.LinkDeadEvents, st.LinkRestores, verdict)
}

func run(loss float64) {
	cfg := multiedge.TwoLinkUnordered1G(2)
	cfg.Link.LossProb = loss
	cfg.Seed = 42
	cl := multiedge.NewCluster(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	const n = 1 << 20
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i*7 + 3)
	}

	var start, end multiedge.Time
	done := false
	cl.Env.Go("sender", func(p *multiedge.Proc) {
		start = cl.Env.Now()
		c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite}).Wait(p)
		end = cl.Env.Now()
		done = true
	})
	cl.Env.RunUntil(120 * multiedge.Second)

	if !done {
		fmt.Printf("loss %5.1f%%: transfer did not complete (unexpected)\n", loss*100)
		return
	}
	ok := bytes.Equal(ep1.Mem()[dst:dst+n], ep0.Mem()[src:src+n])
	st0, st1 := ep0.Stats, ep1.Stats
	verdict := "verified byte-identical"
	if !ok {
		verdict = "CORRUPTED"
	}
	fmt.Printf("loss %5.1f%%: 1 MiB in %-10v  throughput %6.1f MB/s  "+
		"retransmissions %4d  NACKs %3d  duplicates %3d  -> %s\n",
		loss*100, end-start, float64(n)/1e6/(end-start).Seconds(),
		st0.Retransmissions, st1.CtrlNacksSent, st1.Duplicates, verdict)
}
