// DSM grid: a shared-memory Jacobi heat-diffusion stencil over the
// GeNIMA-style DSM. Rows are block-distributed; each sweep reads the
// neighbour rows at the slab boundaries (remote page fetches) and the
// nodes meet at a barrier — the classic SDSM application shape.
package main

import (
	"fmt"

	"multiedge"
	"multiedge/internal/dsm"
)

const (
	nodes  = 4
	side   = 128 // grid side (side x side float64 cells)
	sweeps = 20
)

func main() {
	cfg := multiedge.OneLink1G(nodes)
	cfg.Core.MemBytes = 32 << 20
	cl := multiedge.NewCluster(cfg)
	sys := multiedge.NewDSM(cl, cl.FullMesh(), multiedge.DSMConfig{SharedBytes: 4 << 20})

	// Two grids (ping-pong), rows homed at their owners.
	gridA := sys.AllocOwned(8 * side * side)
	gridB := sys.AllocOwned(8 * side * side)

	// Hot edge at row 0.
	init := make([]byte, 8*side)
	for c := 0; c < side; c++ {
		dsm.SetF64(init, c, 100)
	}
	sys.WriteShared(gridA, init)
	sys.WriteShared(gridB, init)

	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("worker-%d", in.Node()), func(p *multiedge.Proc) {
			lo := in.Node()*side/nodes + 1
			hi := (in.Node() + 1) * side / nodes
			if in.Node() == 0 {
				lo = 1 // row 0 is the fixed hot boundary
			}
			if in.Node() == nodes-1 {
				hi = side - 1
			}
			src, dst := gridA, gridB
			for s := 0; s < sweeps; s++ {
				// Read own rows plus one halo row on each side.
				first, last := lo-1, hi+1
				rd := in.RSlice(p, src+uint64(8*side*first), 8*side*(last-first))
				wr := in.WSlice(p, dst+uint64(8*side*lo), 8*side*(hi-lo))
				at := func(r, c int) float64 { return dsm.F64(rd, (r-first)*side+c) }
				for r := lo; r < hi; r++ {
					for c := 1; c < side-1; c++ {
						v := 0.25 * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1))
						dsm.SetF64(wr, (r-lo)*side+c, v)
					}
				}
				in.Compute(p, multiedge.Time(5*(hi-lo)*side)*4*multiedge.Nanosecond)
				in.Barrier(p)
				src, dst = dst, src
			}
		})
	}
	cl.Env.Run()

	// The result of an even number of sweeps is in gridA.
	out := sys.ReadShared(gridA, 8*side*side)
	fmt.Printf("heat diffusion, %dx%d grid, %d sweeps on %d nodes (virtual time %v)\n",
		side, side, sweeps, nodes, cl.Env.Now())
	for _, r := range []int{0, 2, 8, 32, side - 1} {
		fmt.Printf("  row %3d: center temperature %6.2f\n", r, dsm.F64(out, r*side+side/2))
	}
	var st dsm.Stats
	for _, in := range sys.Insts {
		st.Add(in.Stats)
	}
	fmt.Printf("dsm: %d page fetches, %d diff writes, %d diff messages, %d barriers\n",
		st.Fetches, st.DiffOps, st.DiffMsgs, st.Barriers)
}
