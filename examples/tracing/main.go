// Tracing: the frame-level analysis behind the paper's network-traffic
// results. A striped transfer over two lossy links is traced at both
// endpoints; the run prints per-kind event counts, a bucketed timeline,
// a sampled throughput series, and operation progress polling.
package main

import (
	"fmt"

	"multiedge"
	"multiedge/internal/trace"
)

func main() {
	cfg := multiedge.TwoLinkUnordered1G(2)
	cfg.Link.LossProb = 0.02
	cl := multiedge.NewCluster(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	tr := trace.New(cl.Env, 1<<16)
	ep1.SetTrace(tr)
	ep0.SetTrace(trace.New(cl.Env, 1<<16))

	const n = 2 << 20
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)

	// Sample receive throughput (MB/s) every 250 us for 15 ms.
	var lastBytes uint64
	sampler := trace.NewSampler(cl.Env, 250*multiedge.Microsecond, 15*multiedge.Millisecond,
		func() float64 {
			b := ep1.Stats.DataBytesRecv
			mbps := float64(b-lastBytes) / 1e6 / (250 * multiedge.Microsecond).Seconds()
			lastBytes = b
			return mbps
		})

	cl.Env.Go("xfer", func(p *multiedge.Proc) {
		h := c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite})
		for !h.Test() {
			done, total := h.Progress()
			fmt.Printf("[%v] progress %d/%d bytes acknowledged\n", cl.Env.Now(), done, total)
			p.Sleep(3 * multiedge.Millisecond)
		}
	})
	cl.Env.Run()

	fmt.Println()
	fmt.Print("receiver ", tr.Summary())
	fmt.Println("\nreceiver timeline (2 ms buckets):")
	fmt.Print(tr.Timeline(2 * multiedge.Millisecond))
	fmt.Println("\nreceive throughput over time (MB/s):")
	fmt.Print(sampler.S.Render(64, 6))
}
