// Service layer: a named service replicated over three backends, a
// client stub with session affinity, and a mid-run backend kill the
// stub absorbs by journaling the in-flight call and re-landing it —
// exactly once — on a surviving replica.
package main

import (
	"bytes"
	"fmt"

	"multiedge"
)

func main() {
	// Five nodes: client 0, backends 1-3, relay 4. The functional
	// options turn on the recovery layer (supervised redial) and
	// heartbeats so an idle connection notices a dead peer.
	cfg := multiedge.OneLink1G(5)
	cfg.Core.RTOMax = 2 * multiedge.Millisecond
	cfg.Core.MaxRetries = 3
	cl := multiedge.NewCluster(cfg,
		multiedge.WithReconnect(3),
		multiedge.WithHeartbeat(multiedge.Millisecond, 5*multiedge.Millisecond))

	// Register "kv": one 64-KiB region per replica, plus a relay for
	// clients whose direct path to a backend breaks.
	reg := multiedge.NewRegistry()
	svc, err := multiedge.Serve(reg, "kv", 1<<16,
		[]*multiedge.Endpoint{cl.Nodes[1].EP, cl.Nodes[2].EP, cl.Nodes[3].EP},
		multiedge.WithRelay(cl.Nodes[4].EP, 4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("serving %q: %d replicas of %d bytes\n", svc.Name, svc.Replicas(), svc.Size)

	// A stub on node 0: affinity keeps each session token on one
	// replica; the budget bounds how long a call rides a broken path
	// before failing over.
	stub, err := multiedge.Connect(cl.Nodes[0].EP, reg, "kv",
		multiedge.WithBalancer(multiedge.NewAffinity(multiedge.NewRoundRobin())),
		multiedge.WithFailoverBudget(10*multiedge.Millisecond))
	if err != nil {
		panic(err)
	}

	ep0 := cl.Nodes[0].EP
	const n = 8192
	src, chk := ep0.Alloc(n), ep0.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i*7 + 1)
	}

	cl.Env.Go("client", func(p *multiedge.Proc) {
		// First call binds session token 1 to a backend.
		must(stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: src, Size: n, Kind: multiedge.OpWrite,
		}))
		bound := -1
		for b, calls := range stub.Stats.PerBackend {
			if calls > 0 {
				bound = b
			}
		}
		fmt.Printf("[%v] session 1 bound to backend %d (node %d)\n",
			cl.Env.Now(), bound, svc.Backends[bound].Node)

		// Kill the bound backend's node, then rewrite the region: the
		// call journals off the dead connection and lands on a
		// survivor.
		cl.PauseNode(svc.Backends[bound].Node)
		fmt.Printf("[%v] killed node %d\n", cl.Env.Now(), svc.Backends[bound].Node)
		must(stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: src, Size: n, Kind: multiedge.OpWrite,
		}))

		// Read it back from wherever session 1 lives now.
		must(stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: chk, Size: n, Kind: multiedge.OpRead,
		}))
		if !bytes.Equal(ep0.Mem()[chk:chk+n], ep0.Mem()[src:src+n]) {
			panic("read-back mismatch")
		}
		fmt.Printf("[%v] verified %d bytes after failover: failovers=%d condemned=%d journaled=%d eligible=%v\n",
			cl.Env.Now(), n, stub.Stats.Failovers, stub.Stats.BackendsCondemned,
			stub.Stats.JournaledOps, stub.EligibleBackends())
		stub.Close(p)
	})
	cl.Env.RunUntil(30 * multiedge.Second)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
