// Quickstart: a two-node MultiEdge cluster, one remote write with a
// completion notification — the smallest end-to-end use of the API.
package main

import (
	"fmt"

	"multiedge"
)

func main() {
	// Build the paper's 1L-1G configuration with two nodes.
	cl := multiedge.NewCluster(multiedge.OneLink1G(2))

	// Establish a connection between node 0 and node 1.
	c01, c10 := cl.Pair()

	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	msg := []byte("hello over raw Ethernet frames")
	src := ep0.Alloc(len(msg))
	dst := ep1.Alloc(len(msg))
	copy(ep0.Mem()[src:], msg)

	// Node 0: write the buffer into node 1's memory and ask for a
	// remote notification; wait until every frame is acknowledged. Do
	// returns an error for invalid ranges or a closed connection —
	// MustDo is the panicking shorthand when the caller guarantees both.
	cl.Env.Go("writer", func(p *multiedge.Proc) {
		h, err := c01.Do(p, multiedge.Op{
			Remote: dst, Local: src, Size: len(msg),
			Kind: multiedge.OpWrite, Flags: multiedge.Notify,
		})
		if err != nil {
			panic(err)
		}
		h.Wait(p)
		fmt.Printf("[%v] writer: operation %d acknowledged end-to-end\n", cl.Env.Now(), h.OpID())
	})

	// Node 1: block until the notification says the data has been
	// performed, then read it straight out of local memory.
	cl.Env.Go("reader", func(p *multiedge.Proc) {
		n := c10.WaitNotify(p)
		data := ep1.Mem()[n.Addr : n.Addr+uint64(n.Len)]
		fmt.Printf("[%v] reader: %d bytes from node %d: %q\n", cl.Env.Now(), n.Len, n.From, data)
	})

	cl.Env.Run()

	st := ep0.Stats
	fmt.Printf("protocol: %d data frames, %d explicit ACKs, %d retransmissions\n",
		st.DataFramesSent, cl.Nodes[1].EP.Stats.CtrlAcksSent, st.Retransmissions)
}
