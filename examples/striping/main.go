// Striping: spatial parallelism over two 1-GBit/s links. A bulk
// transfer is striped frame-by-frame across both rails (IPPS'07 §2.5);
// the run shows the aggregated throughput, the out-of-order arrival
// fraction, and the backward/forward fence API ordering a control
// message behind the bulk data.
package main

import (
	"bytes"
	"fmt"

	"multiedge"
)

func main() {
	for _, ordered := range []bool{false, true} {
		run(ordered)
	}
}

func run(strict bool) {
	cfg := multiedge.TwoLinkUnordered1G(2)
	label := "2Lu-1G (out-of-order delivery)"
	if strict {
		cfg = multiedge.TwoLink1G(2)
		label = "2L-1G (strictly ordered)"
	}
	cl := multiedge.NewCluster(cfg)
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	const n = 2 << 20 // 2 MiB
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	flagAddr := ep1.Alloc(8)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i * 31)
	}

	var start, end multiedge.Time
	cl.Env.Go("sender", func(p *multiedge.Proc) {
		start = cl.Env.Now()
		// Bulk data: free to be reordered across the two rails.
		h := c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite})
		// The "done" flag must not be performed before the data: a
		// backward fence (and a notification for the receiver).
		c01.MustDo(p, multiedge.Op{Remote: flagAddr, Local: src, Size: 8, Kind: multiedge.OpWrite, Flags: multiedge.FenceBefore | multiedge.Notify})
		h.Wait(p)
		end = cl.Env.Now()
	})
	var checked bool
	cl.Env.Go("receiver", func(p *multiedge.Proc) {
		c10.WaitNotify(p) // fenced: all 2 MiB are in place now
		checked = bytes.Equal(ep1.Mem()[dst:dst+n], ep0.Mem()[src:src+n])
	})
	cl.Env.Run()

	mbs := float64(n) / 1e6 / (end - start).Seconds()
	st := ep1.Stats
	fmt.Printf("%s\n", label)
	fmt.Printf("  throughput %7.1f MB/s over %d links (nominal 250)\n", mbs, c01.Links())
	fmt.Printf("  out-of-order arrivals %.0f%%, frames held for ordering: %d\n",
		st.OOOFraction()*100, st.HeldFrames)
	if checked {
		fmt.Printf("  fenced flag arrived after all data: contents verified\n\n")
	} else {
		fmt.Printf("  DATA MISMATCH\n\n")
	}
}
