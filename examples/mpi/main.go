// MPI-style message passing over MultiEdge: the paper's §1 thesis is
// that one edge-based interconnect can serve multiple application
// domains; this example runs a message-passing program (numerical
// integration of pi with Allreduce, plus an Alltoall exchange) on the
// same transport the DSM examples use.
package main

import (
	"fmt"

	"multiedge"
)

const (
	ranks     = 8
	intervals = 1 << 20
)

func main() {
	cfg := multiedge.TwoLinkUnordered1G(ranks)
	cfg.Core.MemBytes = 32 << 20
	cl := multiedge.NewCluster(cfg)
	comms := multiedge.NewComms(cl, cl.FullMesh())

	for _, c := range comms {
		c := c
		cl.Env.Go(fmt.Sprintf("rank%d", c.Rank()), func(p *multiedge.Proc) {
			// Each rank integrates its strip of 4/(1+x^2) over [0,1).
			var local float64
			for i := c.Rank(); i < intervals; i += c.Size() {
				x := (float64(i) + 0.5) / intervals
				local += 4 / (1 + x*x)
			}
			local /= intervals

			pi := c.Allreduce(p, []float64{local})[0]
			c.Barrier(p)
			if c.Rank() == 0 {
				fmt.Printf("[%v] pi = %.12f (%d ranks, %d intervals)\n",
					cl.Env.Now(), pi, c.Size(), intervals)
			}

			// Personalized all-to-all: rank r sends "r->j" to rank j.
			send := make([][]byte, c.Size())
			for j := range send {
				send[j] = []byte(fmt.Sprintf("%d->%d", c.Rank(), j))
			}
			recv := c.Alltoall(p, send)
			if c.Rank() == 3 {
				fmt.Printf("[%v] rank 3 received:", cl.Env.Now())
				for j, b := range recv {
					_ = j
					fmt.Printf(" %s", b)
				}
				fmt.Println()
			}
			c.Barrier(p)
		})
	}
	cl.Env.Run()

	var eager, rndv, stalls uint64
	for _, c := range comms {
		eager += c.Stats.EagerSent
		rndv += c.Stats.RndvSent
		stalls += c.Stats.SendStalls
	}
	fmt.Printf("messages: %d eager, %d rendezvous, %d credit stalls\n", eager, rndv, stalls)
}
